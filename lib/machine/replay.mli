(** Model replay: the "model many" half of trace-once/model-many.

    Folds a recorded event stream ({!Mtrace.t}) through the
    config-dependent machine model — bundle issue, L1/L2 hierarchy,
    bimodal predictor, latencies — reproducing {!Flatsim.run}'s cycles
    and full counter bank bit-identically for any config, without
    re-executing the program.  The accounting code is {!Flatsim}'s own
    exported internals, so agreement is structural.

    A non-[Finished] trace re-raises the engine exception the fused
    simulator would have raised ({!Mira.Interp.Trap} /
    {!Mira.Interp.Out_of_fuel}), before any model work. *)

(** Replay one config over the trace.
    @raise Mira.Interp.Trap when the traced run trapped
    @raise Mira.Interp.Out_of_fuel when the traced run exhausted fuel *)
val run : config:Config.t -> Mtrace.t -> Flatsim.result

(** Replay a whole architecture grid against one trace: the semantic
    execution is paid once, each config then costs one model fold over
    the recorded stream (sequential per config — the trace streams with
    perfect prefetch, while interleaving k model working sets measures
    slower).  [run_grid ~configs:[|c|] tr] is exactly
    [[| run ~config:c tr |]], and the results are independent of the
    order of [configs] (model states never interact).
    @raise Mira.Interp.Trap when the traced run trapped
    @raise Mira.Interp.Out_of_fuel when the traced run exhausted fuel *)
val run_grid : configs:Config.t array -> Mtrace.t -> Flatsim.result array
