(* Set-associative cache with true-LRU replacement, write-allocate /
   write-back policy.  Used for both L1D and L2 in the simulated machine. *)

type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
}

let lines cfg = cfg.size_bytes / cfg.line_bytes
let sets cfg = max 1 (lines cfg / cfg.assoc)

type t = {
  cfg : config;
  nsets : int;
  line_shift : int;      (* log2 line_bytes (checked power of two) *)
  set_mask : int;        (* nsets - 1 when nsets is a power of two, else -1 *)
  set_shift : int;       (* log2 nsets when it is a power of two *)
  ways : int array;
      (* nsets * assoc (tag, age, dirty) triples, interleaved so one
         set's state shares a cache line; tag -1 = invalid *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

(* field offsets within a way triple *)
let w_tag = 0
let w_age = 1
let w_dirty = 2

let check_config cfg =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  if not (pow2 cfg.line_bytes) then
    invalid_arg "Cache: line_bytes must be a power of two";
  if cfg.size_bytes < cfg.line_bytes then
    invalid_arg "Cache: size smaller than one line";
  if cfg.size_bytes mod cfg.line_bytes <> 0 then
    invalid_arg "Cache: size not a multiple of line size";
  if cfg.assoc <= 0 || lines cfg mod cfg.assoc <> 0 then
    invalid_arg "Cache: associativity does not divide the line count"

let log2_exact n =
  let rec go i = if 1 lsl i >= n then i else go (i + 1) in
  go 0

let invalidate_ways (ways : int array) =
  let n = Array.length ways / 3 in
  for i = 0 to n - 1 do
    ways.(3 * i) <- -1;
    ways.((3 * i) + 1) <- 0;
    ways.((3 * i) + 2) <- 0
  done

let make cfg =
  check_config cfg;
  let n = sets cfg * cfg.assoc in
  let nsets = sets cfg in
  let pow2 x = x > 0 && x land (x - 1) = 0 in
  let ways = Array.make (n * 3) 0 in
  invalidate_ways ways;
  {
    cfg;
    nsets;
    line_shift = log2_exact cfg.line_bytes;
    set_mask = (if pow2 nsets then nsets - 1 else -1);
    set_shift = (if pow2 nsets then log2_exact nsets else 0);
    ways;
    clock = 0;
    accesses = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
  }

let reset t =
  invalidate_ways t.ways;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0

type outcome = {
  hit : bool;
  writeback : int option;  (* address of a dirty line evicted by this fill *)
}

let hit = -2
let miss = -1

(* Allocation-free access for the per-event hot loops (Flatsim and the
   trace replay): same state evolution as [access], with the outcome
   encoded as an int — [hit], [miss], or the (non-negative) writeback
   address of a dirty line displaced by the fill.  All tags/dirty/age
   indices are [set * assoc + way] with [set < nsets], [way < assoc], so
   the unsafe accesses are in bounds by construction. *)
(* Miss path after a failed hit scan: replacement choice, writeback
   accounting, line install.  Shared by [access_fast] below and by
   Flatsim's in-unit hit probe (dev builds compile with -opaque, so the
   probe keeps the common hit case call-free and only misses land
   here).  The caller has already bumped accesses/clock. *)
let fill (t : t) ~(set : int) ~(tag : int) ~(write : bool) : int =
  let assoc = t.cfg.assoc in
  let ways = t.ways in
  let base = set * assoc * 3 in
  let limit = base + (assoc * 3) in
  t.misses <- t.misses + 1;
  (* choose victim: invalid way first, else LRU; a direct-mapped set
     has no choice to make *)
  let v =
    if assoc = 1 then base
    else begin
      let victim = ref base in
      let best = ref max_int in
      let i = ref base in
      while !i < limit do
        if Array.unsafe_get ways (!i + w_tag) = -1 && !best > -1 then begin
          victim := !i;
          best := -1
        end
        else if !best >= 0 && Array.unsafe_get ways (!i + w_age) < !best
        then begin
          victim := !i;
          best := Array.unsafe_get ways (!i + w_age)
        end;
        i := !i + 3
      done;
      !victim
    end
  in
  let old_tag = Array.unsafe_get ways (v + w_tag) in
  let writeback =
    if old_tag >= 0 then begin
      t.evictions <- t.evictions + 1;
      if Array.unsafe_get ways (v + w_dirty) <> 0 then begin
        t.writebacks <- t.writebacks + 1;
        let old_line = (old_tag * t.nsets) + set in
        old_line * t.cfg.line_bytes
      end
      else miss
    end
    else miss
  in
  Array.unsafe_set ways (v + w_tag) tag;
  Array.unsafe_set ways (v + w_age) t.clock;
  Array.unsafe_set ways (v + w_dirty) (if write then 1 else 0);
  writeback

let access_fast (t : t) ~(addr : int) ~(write : bool) : int =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  (* addresses are non-negative, so shift/mask equal the divisions *)
  let line = addr lsr t.line_shift in
  let set = if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets in
  let tag = if t.set_mask >= 0 then line lsr t.set_shift else line / t.nsets in
  let assoc = t.cfg.assoc in
  let ways = t.ways in
  let base = set * assoc * 3 in
  let limit = base + (assoc * 3) in
  (* hit scan: tag slots at stride 3, straight-line for the 1-, 2-, 4-
     and 8-way geometries the preset L1s and L2s use.  Every index stays
     within [base, limit) <= length ways, so unsafe is in bounds. *)
  let w =
    if assoc = 2 then
      if Array.unsafe_get ways (base + w_tag) = tag then base
      else if Array.unsafe_get ways (base + 3 + w_tag) = tag then base + 3
      else -3
    else if assoc = 1 then
      if Array.unsafe_get ways (base + w_tag) = tag then base else -3
    else if assoc = 4 || assoc = 8 then begin
      let h4 b =
        if Array.unsafe_get ways (b + w_tag) = tag then b
        else if Array.unsafe_get ways (b + 3 + w_tag) = tag then b + 3
        else if Array.unsafe_get ways (b + 6 + w_tag) = tag then b + 6
        else if Array.unsafe_get ways (b + 9 + w_tag) = tag then b + 9
        else -3
      in
      let w = h4 base in
      if w >= 0 || assoc = 4 then w else h4 (base + 12)
    end
    else begin
      let w = ref (-3) in
      let i = ref base in
      while !w < 0 && !i < limit do
        if Array.unsafe_get ways (!i + w_tag) = tag then w := !i;
        i := !i + 3
      done;
      !w
    end
  in
  if w >= 0 then begin
    Array.unsafe_set ways (w + w_age) t.clock;
    if write then Array.unsafe_set ways (w + w_dirty) 1;
    hit
  end
  else fill t ~set ~tag ~write

let access (t : t) ~(addr : int) ~(write : bool) : outcome =
  match access_fast t ~addr ~write with
  | r when r = hit -> { hit = true; writeback = None }
  | r when r = miss -> { hit = false; writeback = None }
  | wb -> { hit = false; writeback = Some wb }

(* standard configurations *)
let kib n = n * 1024

let l1_default = { size_bytes = kib 16; assoc = 2; line_bytes = 64 }
let l2_default = { size_bytes = kib 256; assoc = 8; line_bytes = 64 }
