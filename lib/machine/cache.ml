(* Set-associative cache with true-LRU replacement, write-allocate /
   write-back policy.  Used for both L1D and L2 in the simulated machine. *)

type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
}

let lines cfg = cfg.size_bytes / cfg.line_bytes
let sets cfg = max 1 (lines cfg / cfg.assoc)

type t = {
  cfg : config;
  nsets : int;
  line_shift : int;      (* log2 line_bytes (checked power of two) *)
  set_mask : int;        (* nsets - 1 when nsets is a power of two, else -1 *)
  set_shift : int;       (* log2 nsets when it is a power of two *)
  tags : int array;      (* nsets * assoc; -1 = invalid *)
  dirty : bool array;
  age : int array;       (* LRU stamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let check_config cfg =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  if not (pow2 cfg.line_bytes) then
    invalid_arg "Cache: line_bytes must be a power of two";
  if cfg.size_bytes < cfg.line_bytes then
    invalid_arg "Cache: size smaller than one line";
  if cfg.size_bytes mod cfg.line_bytes <> 0 then
    invalid_arg "Cache: size not a multiple of line size";
  if cfg.assoc <= 0 || lines cfg mod cfg.assoc <> 0 then
    invalid_arg "Cache: associativity does not divide the line count"

let log2_exact n =
  let rec go i = if 1 lsl i >= n then i else go (i + 1) in
  go 0

let make cfg =
  check_config cfg;
  let n = sets cfg * cfg.assoc in
  let nsets = sets cfg in
  let pow2 x = x > 0 && x land (x - 1) = 0 in
  {
    cfg;
    nsets;
    line_shift = log2_exact cfg.line_bytes;
    set_mask = (if pow2 nsets then nsets - 1 else -1);
    set_shift = (if pow2 nsets then log2_exact nsets else 0);
    tags = Array.make n (-1);
    dirty = Array.make n false;
    age = Array.make n 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.age 0 (Array.length t.age) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0

type outcome = {
  hit : bool;
  writeback : int option;  (* address of a dirty line evicted by this fill *)
}

let access (t : t) ~(addr : int) ~(write : bool) : outcome =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  (* addresses are non-negative, so shift/mask equal the divisions *)
  let line = addr lsr t.line_shift in
  let set = if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets in
  let tag = if t.set_mask >= 0 then line lsr t.set_shift else line / t.nsets in
  let base = set * t.cfg.assoc in
  let rec find i =
    if i = t.cfg.assoc then None
    else if t.tags.(base + i) = tag then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.age.(base + i) <- t.clock;
    if write then t.dirty.(base + i) <- true;
    { hit = true; writeback = None }
  | None ->
    t.misses <- t.misses + 1;
    (* choose victim: invalid way first, else LRU *)
    let victim = ref 0 in
    let best = ref max_int in
    for i = 0 to t.cfg.assoc - 1 do
      if t.tags.(base + i) = -1 && !best > -1 then begin
        victim := i;
        best := -1
      end
      else if !best >= 0 && t.age.(base + i) < !best then begin
        victim := i;
        best := t.age.(base + i)
      end
    done;
    let v = base + !victim in
    let writeback =
      if t.tags.(v) >= 0 then begin
        t.evictions <- t.evictions + 1;
        if t.dirty.(v) then begin
          t.writebacks <- t.writebacks + 1;
          let old_line = (t.tags.(v) * t.nsets) + set in
          Some (old_line * t.cfg.line_bytes)
        end
        else None
      end
      else None
    in
    t.tags.(v) <- tag;
    t.dirty.(v) <- write;
    t.age.(v) <- t.clock;
    { hit = false; writeback }

(* standard configurations *)
let kib n = n * 1024

let l1_default = { size_bytes = kib 16; assoc = 2; line_bytes = 64 }
let l2_default = { size_bytes = kib 256; assoc = 8; line_bytes = 64 }
