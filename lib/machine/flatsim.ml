module Interp = Mira.Interp
module D = Mira.Decode

(* Cycle-level simulator over Decode bytecode, with Sim's accounting
   fused into the dispatch arms.  See flatsim.mli for the contract; the
   execution arms mirror Decode.exec and the accounting mirrors
   Sim.on_instr / on_branch / hooks_of, both line for line.  The
   reference calls on_instr *before* evaluating operands, evaluates a
   Br condition *before* on_branch, and fires on_jump for Ret *before*
   evaluating the return operand — the arm ordering below preserves all
   of that, so counters and cycles match even on trapping runs. *)

type result = {
  cycles : int;
  counters : Counters.bank;
  ret : Interp.value;
  output : string;
  steps : int;
}

(* timing state; machine parameters pre-extracted from Config.t so the
   hot loop reads flat record fields *)
type mt = {
  bank : Counters.bank;
  l1 : Cache.t;
  l2 : Cache.t;
  bp : Predictor.t;
  mutable cycles : int;
  mutable bundle : int;
  mutable bundle_id : int;
  mutable stamps : int array;
  issue_width : int;
  lat_mul : int;
  lat_div : int;
  lat_fadd : int;
  lat_fmul : int;
  lat_fdiv : int;
  branch_cost : int;
  jump_cost : int;
  mispredict_penalty : int;
  call_overhead : int;
  print_cost : int;
  l1_lat : int;
  l2_lat : int;
  mem_lat : int;
}

let mk_mt (cfg : Config.t) : mt =
  {
    bank = Counters.make ();
    l1 = Cache.make cfg.Config.l1;
    l2 = Cache.make cfg.Config.l2;
    bp = Predictor.make ~size:cfg.Config.predictor_size ();
    cycles = 0;
    bundle = 0;
    bundle_id = 1;
    stamps = Array.make 256 0;
    issue_width = cfg.Config.issue_width;
    lat_mul = cfg.Config.lat_mul;
    lat_div = cfg.Config.lat_div;
    lat_fadd = cfg.Config.lat_fadd;
    lat_fmul = cfg.Config.lat_fmul;
    lat_fdiv = cfg.Config.lat_fdiv;
    branch_cost = cfg.Config.branch_cost;
    jump_cost = cfg.Config.jump_cost;
    mispredict_penalty = cfg.Config.mispredict_penalty;
    call_overhead = cfg.Config.call_overhead;
    print_cost = cfg.Config.print_cost;
    l1_lat = cfg.Config.l1_lat;
    l2_lat = cfg.Config.l2_lat;
    mem_lat = cfg.Config.mem_lat;
  }

(* Raw counter-bank slots (resolved once via Counters.to_index) bumped
   through a tiny helper the compiler inlines: the fused loop touches
   counters several times per instruction, so the [Counters.incr] call
   pair (incr + to_index) is measurable at this granularity.  Every
   index is < Counters.count = bank length, so the unsafe accesses are
   in bounds. *)
let c_tot_ins = Counters.to_index Counters.TOT_INS
let c_ld_ins = Counters.to_index Counters.LD_INS
let c_sr_ins = Counters.to_index Counters.SR_INS
let c_br_ins = Counters.to_index Counters.BR_INS
let c_br_tkn = Counters.to_index Counters.BR_TKN
let c_br_msp = Counters.to_index Counters.BR_MSP
let c_fp_ins = Counters.to_index Counters.FP_INS
let c_int_ins = Counters.to_index Counters.INT_INS
let c_mul_ins = Counters.to_index Counters.MUL_INS
let c_div_ins = Counters.to_index Counters.DIV_INS
let c_call_ins = Counters.to_index Counters.CALL_INS
let c_l1_tca = Counters.to_index Counters.L1_TCA
let c_l1_tcm = Counters.to_index Counters.L1_TCM
let c_l1_ldm = Counters.to_index Counters.L1_LDM
let c_l1_stm = Counters.to_index Counters.L1_STM
let c_l2_tca = Counters.to_index Counters.L2_TCA
let c_l2_tcm = Counters.to_index Counters.L2_TCM
let c_l2_ldm = Counters.to_index Counters.L2_LDM
let c_l2_stm = Counters.to_index Counters.L2_STM

let[@inline] bump (b : Counters.bank) i =
  Array.unsafe_set b i (Array.unsafe_get b i + 1)

let ensure_stamp mt r =
  if r >= Array.length mt.stamps then begin
    let n = Array.make (max (r + 1) (2 * Array.length mt.stamps)) 0 in
    Array.blit mt.stamps 0 n 0 (Array.length mt.stamps);
    mt.stamps <- n
  end

let[@inline] close_bundle mt =
  if mt.bundle > 0 then mt.cycles <- mt.cycles + 1;
  mt.bundle <- 0;
  mt.bundle_id <- mt.bundle_id + 1

(* Sim.issue_simple over the decoder's precomputed use array; [d] is the
   defined register (simple ops always have one).  The stamp reads stay
   bounds-checked: a malformed register index must raise the same
   Invalid_argument the reference's [st.stamps.(r)] does. *)
let[@inline] issue_simple mt (uses : int array) (d : int) =
  let stamps = mt.stamps in
  let slen = Array.length stamps in
  let dep = ref false in
  for i = 0 to Array.length uses - 1 do
    let r = Array.unsafe_get uses i in
    if r < slen && stamps.(r) = mt.bundle_id then dep := true
  done;
  if !dep then close_bundle mt;
  mt.bundle <- mt.bundle + 1;
  ensure_stamp mt d;
  mt.stamps.(d) <- mt.bundle_id;
  if mt.bundle >= mt.issue_width then close_bundle mt

(* issue_simple for callers that pre-sized [stamps] past every register
   id they will present and guarantee the ids are non-negative — the
   replay fold, which knows the trace's maximum register up front.  The
   use array is flattened to two scalar slots (simple-issue ops read at
   most two registers); an absent use points at a sentinel stamp slot
   that is never written, so — with [bundle_id] starting at 1 over
   zeroed stamps — it can never register a dependence.  Semantics are
   those of [issue_simple] minus the growth check and the
   malformed-register Invalid_argument (the decoder never emits negative
   slots for simple-issue ops, so the two agree on every decodable
   program; the three-way differential fuzzer holds them to it). *)
let[@inline] issue_simple_pre mt (u0 : int) (u1 : int) (d : int) =
  let stamps = mt.stamps in
  let bid = mt.bundle_id in
  if Array.unsafe_get stamps u0 = bid || Array.unsafe_get stamps u1 = bid then
    close_bundle mt;
  mt.bundle <- mt.bundle + 1;
  Array.unsafe_set stamps d mt.bundle_id;
  if mt.bundle >= mt.issue_width then close_bundle mt

let[@inline] issue_long mt lat =
  close_bundle mt;
  mt.cycles <- mt.cycles + lat

(* config-dependent half of a conditional branch: predictor update,
   misprediction accounting, cost.  The BR_INS/BR_TKN bumps stay with the
   caller — they are config-independent, so the trace engine accumulates
   them once at generation time while this half replays per config.
   The update logic is Predictor.update's, copied in-unit: dev builds
   compile with -opaque, so the cross-module call never inlines, and
   this runs once per dynamic conditional branch per config. *)
let[@inline] branch mt site ~taken =
  let bp = mt.bp in
  let tbl = bp.Predictor.table in
  bp.Predictor.lookups <- bp.Predictor.lookups + 1;
  let i =
    if bp.Predictor.mask >= 0 then site land bp.Predictor.mask
    else begin
      let n = Array.length tbl in
      let i = site mod n in
      if i < 0 then i + n else i
    end
  in
  let v = Array.unsafe_get tbl i in
  let mis = (v >= 2) <> taken in
  if mis then bp.Predictor.mispredicts <- bp.Predictor.mispredicts + 1;
  Array.unsafe_set tbl i
    (if taken then (if v < 3 then v + 1 else 3) else if v > 0 then v - 1 else 0);
  let cost = mt.branch_cost + if mis then mt.mispredict_penalty else 0 in
  if mis then bump mt.bank c_br_msp;
  issue_long mt cost

(* drain the trailing partially-filled bundle and pin TOT_CYC *)
let finish mt =
  if mt.bundle > 0 then mt.cycles <- mt.cycles + 1;
  Counters.set mt.bank Counters.TOT_CYC mt.cycles

(* Cache.access_fast with its hit scan copied in-unit (dev builds
   compile with -opaque, so the cross-module call never inlines, and
   this runs one to three times per memory event).  The straight-line
   scan covers the 1-, 2-, 4- and 8-way geometries every preset level
   uses; anything else takes Cache.access_fast wholesale, and misses
   land in Cache.fill — the shared miss path.  Same state evolution as
   Cache.access on every branch; the differential oracle (Ref prices
   through Cache.access) holds the copies together. *)
let[@inline] cache_access (c : Cache.t) ~(write : bool) (addr : int) : int =
  let assoc = c.Cache.cfg.Cache.assoc in
  if assoc > 2 && assoc <> 4 && assoc <> 8 then
    Cache.access_fast c ~addr ~write
  else begin
    c.Cache.accesses <- c.Cache.accesses + 1;
    c.Cache.clock <- c.Cache.clock + 1;
    let line = addr lsr c.Cache.line_shift in
    let set =
      if c.Cache.set_mask >= 0 then line land c.Cache.set_mask
      else line mod c.Cache.nsets
    in
    let tag =
      if c.Cache.set_mask >= 0 then line lsr c.Cache.set_shift
      else line / c.Cache.nsets
    in
    let ways = c.Cache.ways in
    let base = set * assoc * 3 in
    (* tag slots at stride 3; every index stays within
       [base, base + assoc * 3) <= length ways *)
    let w =
      if Array.unsafe_get ways base = tag then base
      else if assoc = 1 then -3
      else if Array.unsafe_get ways (base + 3) = tag then base + 3
      else if assoc = 2 then -3
      else if Array.unsafe_get ways (base + 6) = tag then base + 6
      else if Array.unsafe_get ways (base + 9) = tag then base + 9
      else if assoc = 4 then -3
      else if Array.unsafe_get ways (base + 12) = tag then base + 12
      else if Array.unsafe_get ways (base + 15) = tag then base + 15
      else if Array.unsafe_get ways (base + 18) = tag then base + 18
      else if Array.unsafe_get ways (base + 21) = tag then base + 21
      else -3
    in
    if w >= 0 then begin
      Array.unsafe_set ways (w + 1) c.Cache.clock;
      if write then Array.unsafe_set ways (w + 2) 1;
      Cache.hit
    end
    else Cache.fill c ~set ~tag ~write
  end

(* same cache-state evolution and counter order as the original
   Cache.access-based version, through the allocation-free encoding
   (this runs once or twice per memory event) *)
let mem_access mt ~write addr =
  let b = mt.bank in
  bump b c_l1_tca;
  let r1 = cache_access mt.l1 ~write addr in
  if r1 = Cache.hit then issue_long mt mt.l1_lat
  else begin
    bump b c_l1_tcm;
    bump b (if write then c_l1_stm else c_l1_ldm);
    bump b c_l2_tca;
    let r2 = cache_access mt.l2 ~write:false addr in
    let lat = ref (mt.l1_lat + mt.l2_lat) in
    if r2 <> Cache.hit then begin
      bump b c_l2_tcm;
      bump b (if write then c_l2_stm else c_l2_ldm);
      lat := !lat + mt.mem_lat
    end;
    (* dirty line displaced from L1 is written into L2 *)
    if r1 >= 0 then begin
      bump b c_l2_tca;
      let r2w = cache_access mt.l2 ~write:true r1 in
      if r2w <> Cache.hit then begin
        bump b c_l2_tcm;
        bump b c_l2_stm
      end
    end;
    issue_long mt !lat
  end

let rec exec (rt : D.rt) (mt : mt) (fr : D.frame) : unit =
  let code = fr.D.df.D.code in
  let bank = mt.bank in
  let pc = ref fr.D.df.D.entry_pc in
  let running = ref true in
  while !running do
    let di = Array.unsafe_get code !pc in
    rt.D.fuel <- rt.D.fuel - 1;
    rt.D.steps <- rt.D.steps + 1;
    if rt.D.fuel <= 0 then raise Interp.Out_of_fuel;
    incr pc;
    match di.D.op with
    | D.OAdd ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a + b)
    | D.OSub ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a - b)
    | D.OMul ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      bump bank c_mul_ins;
      issue_long mt mt.lat_mul;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a * b)
    | D.ODiv ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      bump bank c_div_ins;
      issue_long mt mt.lat_div;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if b = 0 then D.trap "division by zero" else D.set_int fr di.D.dst (a / b)
    | D.ORem ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      bump bank c_div_ins;
      issue_long mt mt.lat_div;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if b = 0 then D.trap "remainder by zero"
      else D.set_int fr di.D.dst (a mod b)
    | D.OAnd ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a land b)
    | D.OOr ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a lor b)
    | D.OXor ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a lxor b)
    | D.OShl ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if D.shift_ok b then D.set_int fr di.D.dst (a lsl b)
      else D.trap "shift count %d" b
    | D.OShr ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if D.shift_ok b then D.set_int fr di.D.dst (a asr b)
      else D.trap "shift count %d" b
    | D.OFAdd ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a +. b)
    | D.OFSub ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a -. b)
    | D.OFMul ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fmul;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a *. b)
    | D.OFDiv ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fdiv;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a /. b)
    | D.OIeq ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      D.do_icmp rt fr di 0
    | D.OIne ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      D.do_icmp rt fr di 1
    | D.OIlt ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      D.do_icmp rt fr di 2
    | D.OIle ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      D.do_icmp rt fr di 3
    | D.OIgt ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      D.do_icmp rt fr di 4
    | D.OIge ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      D.do_icmp rt fr di 5
    | D.OFeq ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      D.do_fcmp rt fr di 0
    | D.OFne ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      D.do_fcmp rt fr di 1
    | D.OFlt ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      D.do_fcmp rt fr di 2
    | D.OFle ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      D.do_fcmp rt fr di 3
    | D.OFgt ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      D.do_fcmp rt fr di 4
    | D.OFge ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      D.do_fcmp rt fr di 5
    | D.ONot ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let x = D.getb rt fr di.D.ak di.D.a in
      D.set_bool fr di.D.dst (not x)
    | D.OMov ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      D.eval_any rt fr di.D.ak di.D.a;
      D.set_scratch rt fr di.D.dst
    | D.OI2f ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (float_of_int a)
    | D.OF2i ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      issue_long mt mt.lat_fadd;
      let f = D.getf rt fr di.D.ak di.D.a in
      if Float.is_nan f || Float.abs f > 4.6e18 then
        D.trap "float-to-int overflow on %g" f
      else D.set_int fr di.D.dst (int_of_float f)
    | D.OLoad ->
      bump bank c_tot_ins;
      bump bank c_ld_ins;
      let ix = D.geti rt fr di.D.bk di.D.b in
      let a = D.geta rt fr di.D.ak di.D.a in
      let len = D.arr_len a in
      if ix < 0 || ix >= len then
        D.trap "load out of bounds: index %d, length %d" ix len;
      mem_access mt ~write:false (a.Interp.base + (ix * a.Interp.esize));
      (match a.Interp.payload with
      | Interp.IA x -> D.set_int fr di.D.dst (Array.unsafe_get x ix)
      | Interp.FA x -> D.set_flt fr di.D.dst (Array.unsafe_get x ix))
    | D.OStore ->
      bump bank c_tot_ins;
      bump bank c_sr_ins;
      D.eval_any rt fr di.D.ck di.D.c;
      let vtag = rt.D.s_tag in
      let vi = rt.D.s_int and vf = rt.D.s_flt in
      let ix = D.geti rt fr di.D.bk di.D.b in
      let a = D.geta rt fr di.D.ak di.D.a in
      let len = D.arr_len a in
      if ix < 0 || ix >= len then
        D.trap "store out of bounds: index %d, length %d" ix len;
      (* the cache sees the store before the element-type check, exactly
         like the reference's on_store hook *)
      mem_access mt ~write:true (a.Interp.base + (ix * a.Interp.esize));
      (match a.Interp.payload with
      | Interp.IA x ->
        if vtag = 1 then
          Array.unsafe_set x ix
            (if a.Interp.mask32 then vi land 0xFFFFFFFF else vi)
        else D.trap "storing non-int into int array"
      | Interp.FA x ->
        if vtag = 2 then Array.unsafe_set x ix vf
        else D.trap "storing non-float into float array")
    | D.OAlen ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      issue_simple mt di.D.uses di.D.dst;
      let a = D.geta rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (D.arr_len a)
    | D.OCall ->
      bump bank c_tot_ins;
      bump bank c_call_ins;
      issue_long mt mt.call_overhead;
      let args = di.D.args in
      let nargs = Array.length args / 2 in
      for j = 0 to nargs - 1 do
        D.eval_any rt fr
          (Array.unsafe_get args (2 * j))
          (Array.unsafe_get args ((2 * j) + 1));
        D.save_arg rt j
      done;
      if di.D.callee < 0 then D.trap "call to unknown function %s" di.D.sname;
      do_call rt mt di.D.callee nargs;
      if di.D.dst >= 0 then D.set_scratch rt fr di.D.dst
    | D.OPrint ->
      bump bank c_tot_ins;
      issue_long mt mt.print_cost;
      D.eval_any rt fr di.D.ak di.D.a;
      Buffer.add_string rt.D.buf
        (match rt.D.s_tag with
        | 1 -> string_of_int rt.D.s_int
        | 2 -> Printf.sprintf "%.6g" rt.D.s_flt
        | 3 -> if rt.D.s_int <> 0 then "true" else "false"
        | _ -> "<array>");
      Buffer.add_char rt.D.buf '\n'
    | D.OJmp ->
      issue_long mt mt.jump_cost;
      pc := di.D.dst
    | D.OBr ->
      (* condition evaluates (and may trap) before any branch
         accounting, like the reference's [as_bool] before on_branch *)
      let taken = D.getb rt fr di.D.ak di.D.a in
      bump bank c_br_ins;
      if taken then bump bank c_br_tkn;
      branch mt di.D.c ~taken;
      pc := if taken then di.D.dst else di.D.b
    | D.ORetN ->
      issue_long mt mt.jump_cost;
      rt.D.s_tag <- 0;
      running := false
    | D.ORetV ->
      (* on_jump fires before the return operand is evaluated *)
      issue_long mt mt.jump_cost;
      D.eval_any rt fr di.D.ak di.D.a;
      running := false
    | D.OBadLabel ->
      raise
        (Invalid_argument
           (Printf.sprintf "Ir.find_block: no block %d in %s" di.D.a
              fr.D.df.D.fname))
  done

and do_call (rt : D.rt) (mt : mt) fidx nargs : unit =
  let df = rt.D.dp.D.funcs.(fidx) in
  if nargs <> Array.length df.D.params then
    D.trap "arity mismatch calling %s" df.D.fname;
  let fr = D.new_frame rt.D.dp fidx in
  D.bind_params rt fr nargs;
  let saved_sp = rt.D.sp in
  fr.D.locals <- D.alloc_locals rt df;
  exec rt mt fr;
  rt.D.sp <- saved_sp

let run ~(config : Config.t) ~(fuel : int) (dp : D.t) : result =
  let rt = D.make_rt ~fuel dp in
  let mt = mk_mt config in
  if dp.D.main_idx < 0 then
    D.trap "call to unknown function %s" dp.D.main_name;
  do_call rt mt dp.D.main_idx 0;
  finish mt;
  let r = D.result_of rt in
  {
    cycles = mt.cycles;
    counters = mt.bank;
    ret = r.Interp.ret;
    output = r.Interp.output;
    steps = r.Interp.steps;
  }

(* ------------------------------------------------------------------ *)
(* Trace-replay fold loops.

   These belong to Replay conceptually, but live in this compilation
   unit so the per-event model calls above are direct and inlinable
   without flambda — at one call per event per config the call overhead
   is the replay's whole budget.  The word layout is Mtrace's: tag in
   the low 2 bits (0 simple / 1 long / 2 mem / 3 branch), payload above
   (simple: signature id * 256 + run length - 1, a run of consecutive
   signature ids — Mtrace.run_bits = 8; long: latency-class index into
   [lat]; mem: addr*2+write; branch: site*2+taken).

   Precondition (Replay's setup establishes it): each mt's [stamps] is
   sized past the largest register id in [sig_dst]/[sig_u0]/[sig_u1] —
   including the sentinel slot absent uses point at — so the fold can
   take the [issue_simple_pre] fast path. *)

let replay_events (mt : mt) ~(events : int array) ~(n : int)
    ~(sig_u0 : int array) ~(sig_u1 : int array) ~(sig_dst : int array)
    ~(lat : int array) : unit =
  for i = 0 to n - 1 do
    let w = Array.unsafe_get events i in
    let payload = w lsr 2 in
    match w land 3 with
    | 0 ->
      let last = (payload lsr 8) + (payload land 0xff) in
      for s = payload lsr 8 to last do
        issue_simple_pre mt
          (Array.unsafe_get sig_u0 s)
          (Array.unsafe_get sig_u1 s)
          (Array.unsafe_get sig_dst s)
      done
    | 1 ->
      (* a run of same-class long ops: the first close_bundle may drain
         a partial bundle, the rest only advance the bundle serial *)
      let n = (payload lsr 3) + 1 in
      let l = Array.unsafe_get lat (payload land 7) in
      close_bundle mt;
      if n > 1 then mt.bundle_id <- mt.bundle_id + (n - 1);
      mt.cycles <- mt.cycles + (n * l)
    | 2 -> mem_access mt ~write:(payload land 1 = 1) (payload lsr 1)
    | _ -> branch mt (payload lsr 1) ~taken:(payload land 1 = 1)
  done

(* Grid variant: one sequential fold per config.  An interleaved
   fan-out (decode each word once, touch every config's state) reads
   the trace array only once, but measures slower: per event it drags
   k cache/predictor/stamp working sets through the host caches, while
   the trace itself streams with perfect prefetch either way.  Keeping
   one config's model state hot per pass wins on every workload. *)
let replay_events_grid (mts : mt array) ~(events : int array) ~(n : int)
    ~(sig_u0 : int array) ~(sig_u1 : int array) ~(sig_dst : int array)
    ~(lats : int array array) : unit =
  for j = 0 to Array.length mts - 1 do
    replay_events mts.(j) ~events ~n ~sig_u0 ~sig_u1 ~sig_dst ~lat:lats.(j)
  done
