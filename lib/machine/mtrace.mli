(** Trace generation: the "trace once" half of trace-once/model-many.

    One run of {!Flatsim}'s dispatch loop over a decoded program,
    recording the model-relevant event stream — instruction-class
    retirements with their use-arrays, load/store byte addresses, branch
    sites with taken bits, call/print/jump serializers — as one packed
    int per event, in the exact order the fused loop would have fed its
    machine model.  {!Replay} then folds that stream through the
    config-dependent accounting once per machine config.

    Nothing here reads {!Config.t}: a program's dynamic instruction and
    memory-reference stream is a property of the program alone, so one
    trace prices an entire architecture grid.  The config-independent
    counters (TOT_INS, LD_INS, SR_INS, BR_INS, BR_TKN, FP_INS, INT_INS,
    MUL_INS, DIV_INS, CALL_INS) are accumulated once at generation time
    into {!field:t.base}; only TOT_CYC, BR_MSP and the cache counters
    are left to the replay pass.

    The execution arms mirror [Flatsim.exec] line for line, and every
    event is emitted at the point the fused loop would have charged it —
    so a trapping or fuel-exhausted run leaves exactly the prefix of
    events {!Flatsim} would have accounted before stopping. *)

(** {2 Event encoding}

    One OCaml int per word; tag in the low 2 bits, payload above:

    - {!tag_simple}: payload = (issue-signature id [lsl] {!run_bits})
      [lor] (run length - 1): a run of consecutive simple-issue events
      whose signature ids (indices into {!field:t.sig_uses} /
      {!field:t.sig_dst}) are id, id+1, ...  Signature ids follow static
      code order, so straight-line stretches of simple ops coalesce into
      one word; a run never spans another event;
    - {!tag_long}: payload = ((run length - 1) [lsl] {!cls_bits}) [lor]
      latency class ({!cls_mul} .. {!cls_jump}): a run of consecutive
      long-latency events of the same class, mapped to the config's
      latency at replay time and folded in O(1) (one bundle drain, then
      pure cycle arithmetic); a run never spans another event;
    - {!tag_mem}: payload = (byte address [lsl] 1) [lor] write;
    - {!tag_branch}: payload = (site id [lsl] 1) [lor] taken. *)

val tag_simple : int
val tag_long : int
val tag_mem : int
val tag_branch : int

val run_bits : int
(** width of the run-length field in a {!tag_simple} word (runs cap at
    [2 ^ run_bits] events and split) *)

val cls_bits : int
(** width of the latency-class field in a {!tag_long} word; the run
    length occupies the bits above it *)

(** latency classes for {!tag_long} events, in {!Config.t} terms *)

val cls_mul : int    (** [lat_mul] *)

val cls_div : int    (** [lat_div]: Div and Rem *)

val cls_fadd : int   (** [lat_fadd]: FP add/sub/cmp and conversions *)

val cls_fmul : int   (** [lat_fmul] *)

val cls_fdiv : int   (** [lat_fdiv] *)

val cls_call : int   (** [call_overhead] *)

val cls_print : int  (** [print_cost] *)

val cls_jump : int   (** [jump_cost]: Jmp and Ret *)

val cls_count : int

(** how the traced execution ended; a non-[Finished] trace still holds
    the event prefix accounted before the stop, and {!Replay} re-raises
    the corresponding engine exception *)
type outcome = Finished | Trapped of string | Exhausted

type t = {
  events : int array;  (** packed words; only [[0, n)] is meaningful *)
  n : int;
  sig_uses : int array array;  (** signature id -> registers read *)
  sig_dst : int array;         (** signature id -> defined register *)
  sig_u0 : int array;
      (** [sig_uses] flattened into two scalar columns (simple-issue ops
          read at most two registers); absent uses point at the sentinel
          stamp slot [max_reg + 1], which is never written *)
  sig_u1 : int array;
  max_reg : int;
      (** largest register id in the sig tables — the replay pre-sizes
          its stamp tables past it and the sentinel slot above it *)
  base : Counters.bank;        (** config-independent counters *)
  outcome : outcome;
  ret : Mira.Interp.value;     (** [VUndef] unless [Finished] *)
  output : string;             (** printed output up to the end / trap *)
  steps : int;
}

(** the meaningful event words, as a fresh array (tests) *)
val words : t -> int array

(** trace size in bytes (events only, one word each) *)
val bytes : t -> int

val outcome_repr : outcome -> string

(** Trace one execution of a decoded program.  Traps and fuel
    exhaustion are captured into {!field:t.outcome}; only malformed-label
    [Invalid_argument] (and a missing [main]'s trap) escape, as in
    {!Flatsim.run}. *)
val generate : ?fuel:int -> Mira.Decode.t -> t

(** [decode] + {!generate} *)
val generate_program : ?fuel:int -> Mira.Ir.program -> t

(** {2 Serialization}

    The compact form [Engine.Tstore] persists: a version byte, then the
    event words delta-coded {e per tag} (zigzag + LEB128 varints, with
    the tag packed into the first byte of each word next to 5 payload
    bits), then the remaining record fields.  Values within one tag are
    strongly autocorrelated — a striding load's addresses, a loop's
    branch site, a repeated run word — so loop-dominated traces encode
    almost every word in a single byte, far below the 8 bytes/word of
    the in-memory array.  [sig_uses] is not stored; it is reconstructed
    exactly from the flattened columns and the sentinel [max_reg + 1].

    The payload carries no checksum — framing and integrity belong to
    the store — but {!decode} validates structurally (version, tags,
    bounds, exact consumption) and returns [Error] rather than raising
    on any malformed input. *)

val codec_version : int

val encode : t -> string
(** compact binary form; [decode (encode tr)] is bit-exact ({!equal}) *)

val decode : string -> (t, string) result

val equal : t -> t -> bool
(** bit-exact equality (floats by bit pattern); events capacity beyond
    [n] is ignored *)
