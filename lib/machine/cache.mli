(** Set-associative cache model with true-LRU replacement and a
    write-allocate / write-back policy.  Used for both the L1D and L2
    levels of the simulated machine. *)

type config = {
  size_bytes : int;   (** total capacity; must be a multiple of the line *)
  assoc : int;        (** ways per set; must divide the line count *)
  line_bytes : int;   (** line size; must be a power of two *)
}

(** number of lines in a configuration *)
val lines : config -> int

(** number of sets in a configuration *)
val sets : config -> int

type t = {
  cfg : config;
  nsets : int;
  line_shift : int;  (** log2 of [cfg.line_bytes] *)
  set_mask : int;    (** [nsets - 1] when [nsets] is a power of two, else -1 *)
  set_shift : int;   (** log2 of [nsets] when it is a power of two *)
  tags : int array;
  dirty : bool array;
  age : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

(** validates the configuration; raises [Invalid_argument] otherwise *)
val check_config : config -> unit

(** fresh, empty cache.  Raises [Invalid_argument] on a bad config. *)
val make : config -> t

(** invalidate all lines and zero the statistics *)
val reset : t -> unit

type outcome = {
  hit : bool;
  writeback : int option;
      (** byte address of a dirty line displaced by this fill, if any;
          the next level must absorb it as write traffic *)
}

(** one access at a byte address; [write] marks the line dirty *)
val access : t -> addr:int -> write:bool -> outcome

(** [kib n] is [n * 1024] *)
val kib : int -> int

val l1_default : config
val l2_default : config
