(** Set-associative cache model with true-LRU replacement and a
    write-allocate / write-back policy.  Used for both the L1D and L2
    levels of the simulated machine. *)

type config = {
  size_bytes : int;   (** total capacity; must be a multiple of the line *)
  assoc : int;        (** ways per set; must divide the line count *)
  line_bytes : int;   (** line size; must be a power of two *)
}

(** number of lines in a configuration *)
val lines : config -> int

(** number of sets in a configuration *)
val sets : config -> int

type t = {
  cfg : config;
  nsets : int;
  line_shift : int;  (** log2 of [cfg.line_bytes] *)
  set_mask : int;    (** [nsets - 1] when [nsets] is a power of two, else -1 *)
  set_shift : int;   (** log2 of [nsets] when it is a power of two *)
  ways : int array;
      (** per way, interleaved (tag, LRU stamp, dirty) triples — one
          set's state stays within a host cache line; tag -1 = invalid *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

(** validates the configuration; raises [Invalid_argument] otherwise *)
val check_config : config -> unit

(** fresh, empty cache.  Raises [Invalid_argument] on a bad config. *)
val make : config -> t

(** invalidate all lines and zero the statistics *)
val reset : t -> unit

type outcome = {
  hit : bool;
  writeback : int option;
      (** byte address of a dirty line displaced by this fill, if any;
          the next level must absorb it as write traffic *)
}

(** one access at a byte address; [write] marks the line dirty *)
val access : t -> addr:int -> write:bool -> outcome

(** {2 Allocation-free variant} — the per-event hot loops (the fused
    simulator and the trace replay) make one or two cache accesses per
    memory event, so the [outcome] record is measurable there. *)

(** result of {!access_fast} when the line was resident *)
val hit : int

(** result of {!access_fast} on a miss that displaced no dirty line *)
val miss : int

(** same state evolution as {!access}; returns {!hit}, {!miss}, or the
    (non-negative) writeback address of a displaced dirty line *)
val access_fast : t -> addr:int -> write:bool -> int

(** The miss path of {!access_fast} after a failed hit scan of [set]:
    replacement, writeback accounting, install of [tag]; returns
    {!miss} or the writeback address.  For callers that duplicate the
    hit scan in their own compilation unit (Flatsim's per-event probe —
    dev builds compile with [-opaque], so cross-module calls never
    inline); such a caller must bump [accesses]/[clock] itself exactly
    as {!access_fast} does before scanning. *)
val fill : t -> set:int -> tag:int -> write:bool -> int

(** [kib n] is [n * 1024] *)
val kib : int -> int

val l1_default : config
val l2_default : config
