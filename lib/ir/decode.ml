(* Pre-decoded flat execution engine.

   [decode] translates an [Ir.program] once into a flat array bytecode;
   [run] executes it on unboxed register files.  The contract is
   bit-identity with [Interp.run] under [no_hooks]: same return value,
   same printed output, same [steps], and the same trap (message
   included) at the same point.  Interp stays the semantics oracle; the
   differential tests in test_flat.ml and the fuzzer police the
   equivalence.

   Everything subtle here is about preserving the oracle's observable
   order of effects:

   - OCaml evaluates function/tuple arguments right-to-left, so the
     reference evaluates operand B before operand A in [Bin]/[Fbin]/
     [Icmp]/[Fcmp], and value-then-index-then-array in [Store].  The
     dispatch arms below fetch operands in exactly that order, because
     each fetch can trap (undefined register, unknown name, wrong type)
     and the *first* trap is the observable one.
   - For [Bin]/[Fbin], operand B's type-conversion trap fires before
     operand A is even read; for [Icmp] both operands are read first
     (tuple) and only then converted, again B first.  The arms mirror
     both shapes.
   - Lookup failures (unknown global/local/function) trap where the
     reference evaluates the name, not at decode time: unknown names are
     interned and compiled to trapping operand kinds.
   - A jump to a nonexistent block must raise the reference's
     [Invalid_argument] from [Ir.find_block].  Decode compiles such
     targets to a synthetic [OBadLabel] slot that raises the identical
     exception when (and only when) reached.  One knowable divergence:
     the flat engine charges the slot its fuel/steps tick before
     raising, so a program that exhausts fuel exactly at a missing label
     reports [Out_of_fuel] where the reference reports
     [Invalid_argument].  Only ill-formed programs (rejected by
     [Ir.check_program], never produced by lowering or passes) can
     reach this.

   Register files are a tag plan: per frame an [int array] of tags plus
   unboxed [int array]/[float array]/handle-array payloads.  A fully
   static type assignment from the typechecker would be faster still but
   unsound for our purposes: the differential fuzzer deliberately feeds
   both engines broken IR (bad pass outputs, mutated programs) whose
   type confusions and undefined-register reads must trap with the
   reference's exact messages.  The tag check is one array load and a
   predictable compare — cheap next to what it replaces (a boxed
   [value] match plus allocation per write). *)

type op =
  | OAdd | OSub | OMul | ODiv | ORem | OAnd | OOr | OXor | OShl | OShr
  | OFAdd | OFSub | OFMul | OFDiv
  | OIeq | OIne | OIlt | OIle | OIgt | OIge
  | OFeq | OFne | OFlt | OFle | OFgt | OFge
  | ONot | OMov | OI2f | OF2i
  | OLoad | OStore | OAlen | OCall | OPrint
  | OJmp
  | OBr
  | ORetN
  | ORetV
  | OBadLabel

let k_reg = 0
let k_int = 1
let k_flt = 2
let k_bool = 3
let k_glob = 4
let k_loc = 5
let k_gunk = 6
let k_lunk = 7
let k_none = 8

type dinstr = {
  op : op;
  dst : int;
  ak : int;
  a : int;
  bk : int;
  b : int;
  ck : int;
  c : int;
  args : int array;
  callee : int;
  sname : string;
  uses : int array;
}

type dfunc = {
  fname : string;
  params : int array;
  nregs : int;
  code : dinstr array;
  entry_pc : int;
  locals : (string * Ir.elt * int) array;
}

type t = {
  funcs : dfunc array;
  main_idx : int;
  main_name : string;
  globals : Ir.global array;
  fpool : float array;
  names : string array;
  max_args : int;
  nsites : int;
}

(* ------------------------------------------------------------------ *)
(* Decoding *)

let nop =
  {
    op = ORetN;
    dst = -1;
    ak = k_none;
    a = 0;
    bk = k_none;
    b = 0;
    ck = k_none;
    c = 0;
    args = [||];
    callee = -1;
    sname = "";
    uses = [||];
  }

let decode_program (p : Ir.program) : t =
  (* float constants interned by bit pattern so -0.0 and NaN payloads
     survive the round trip *)
  let fpool = ref [] and fpool_n = ref 0 in
  let ftbl : (int64, int) Hashtbl.t = Hashtbl.create 16 in
  let intern_float f =
    let bits = Int64.bits_of_float f in
    match Hashtbl.find_opt ftbl bits with
    | Some i -> i
    | None ->
      let i = !fpool_n in
      Hashtbl.replace ftbl bits i;
      fpool := f :: !fpool;
      incr fpool_n;
      i
  in
  let names = ref [] and names_n = ref 0 in
  let ntbl : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let intern_name s =
    match Hashtbl.find_opt ntbl s with
    | Some i -> i
    | None ->
      let i = !names_n in
      Hashtbl.replace ntbl s i;
      names := s :: !names;
      incr names_n;
      i
  in
  (* name -> index maps; [replace] so a duplicate declaration shadows the
     earlier one, matching Hashtbl.replace in Interp.init_globals and in
     the reference frame setup *)
  let gtbl = Hashtbl.create 16 in
  List.iteri (fun i (g : Ir.global) -> Hashtbl.replace gtbl g.Ir.gname i) p.globals;
  let fun_list = Ir.SMap.bindings p.funcs in
  let funtbl = Hashtbl.create 16 in
  List.iteri (fun i (n, _) -> Hashtbl.replace funtbl n i) fun_list;
  let max_args = ref 0 in
  (* conditional-branch sites numbered in SMap x LMap iteration order —
     the same order Interp.build_sites assigns them, so the predictor
     state evolves identically in both engines *)
  let site_count = ref 0 in
  let decode_func (fname, (f : Ir.func)) : dfunc =
    let ltbl = Hashtbl.create 8 in
    List.iteri (fun i (n, _, _) -> Hashtbl.replace ltbl n i) f.Ir.locals;
    let blocks = Ir.LMap.bindings f.Ir.blocks in
    let starts = Hashtbl.create 16 in
    let off = ref 0 in
    List.iter
      (fun (l, (b : Ir.block)) ->
        Hashtbl.replace starts l !off;
        off := !off + List.length b.Ir.instrs + 1)
      blocks;
    let nreal = !off in
    (* jump targets that don't exist compile to synthetic trapping slots
       appended after the real code *)
    let badtbl = Hashtbl.create 2 in
    let bad_slots = ref [] in
    let target l =
      match Hashtbl.find_opt starts l with
      | Some pc -> pc
      | None -> (
        match Hashtbl.find_opt badtbl l with
        | Some pc -> pc
        | None ->
          let pc = nreal + Hashtbl.length badtbl in
          Hashtbl.replace badtbl l pc;
          bad_slots := l :: !bad_slots;
          pc)
    in
    let enc (o : Ir.operand) : int * int =
      match o with
      | Ir.Reg r -> (k_reg, r)
      | Ir.Cint n -> (k_int, n)
      | Ir.Cfloat f -> (k_flt, intern_float f)
      | Ir.Cbool b -> (k_bool, if b then 1 else 0)
      | Ir.AGlob g -> (
        match Hashtbl.find_opt gtbl g with
        | Some i -> (k_glob, i)
        | None -> (k_gunk, intern_name g))
      | Ir.ALoc n -> (
        match Hashtbl.find_opt ltbl n with
        | Some i -> (k_loc, i)
        | None -> (k_lunk, intern_name n))
    in
    let uses_arr i = Array.of_list (Ir.uses_of i) in
    let enc_instr (i : Ir.instr) : dinstr =
      match i with
      | Ir.Bin (aop, d, a, b) ->
        let op, simple =
          match aop with
          | Ir.Add -> (OAdd, true)
          | Ir.Sub -> (OSub, true)
          | Ir.Mul -> (OMul, false)
          | Ir.Div -> (ODiv, false)
          | Ir.Rem -> (ORem, false)
          | Ir.And -> (OAnd, true)
          | Ir.Or -> (OOr, true)
          | Ir.Xor -> (OXor, true)
          | Ir.Shl -> (OShl, true)
          | Ir.Shr -> (OShr, true)
        in
        let ak, a = enc a and bk, b = enc b in
        let uses = if simple then uses_arr i else [||] in
        { nop with op; dst = d; ak; a; bk; b; uses }
      | Ir.Fbin (fop, d, a, b) ->
        let op =
          match fop with
          | Ir.FAdd -> OFAdd
          | Ir.FSub -> OFSub
          | Ir.FMul -> OFMul
          | Ir.FDiv -> OFDiv
        in
        let ak, a = enc a and bk, b = enc b in
        { nop with op; dst = d; ak; a; bk; b }
      | Ir.Icmp (cop, d, a, b) ->
        let op =
          match cop with
          | Ir.Eq -> OIeq
          | Ir.Ne -> OIne
          | Ir.Lt -> OIlt
          | Ir.Le -> OIle
          | Ir.Gt -> OIgt
          | Ir.Ge -> OIge
        in
        let ak, a = enc a and bk, b = enc b in
        { nop with op; dst = d; ak; a; bk; b; uses = uses_arr i }
      | Ir.Fcmp (cop, d, a, b) ->
        let op =
          match cop with
          | Ir.Eq -> OFeq
          | Ir.Ne -> OFne
          | Ir.Lt -> OFlt
          | Ir.Le -> OFle
          | Ir.Gt -> OFgt
          | Ir.Ge -> OFge
        in
        let ak, a = enc a and bk, b = enc b in
        { nop with op; dst = d; ak; a; bk; b }
      | Ir.Not (d, a) ->
        let ak, a = enc a in
        { nop with op = ONot; dst = d; ak; a; uses = uses_arr i }
      | Ir.Mov (d, a) ->
        let ak, a = enc a in
        { nop with op = OMov; dst = d; ak; a; uses = uses_arr i }
      | Ir.I2f (d, a) ->
        let ak, a = enc a in
        { nop with op = OI2f; dst = d; ak; a }
      | Ir.F2i (d, a) ->
        let ak, a = enc a in
        { nop with op = OF2i; dst = d; ak; a }
      | Ir.Load (d, a, ix) ->
        let ak, a = enc a and bk, b = enc ix in
        { nop with op = OLoad; dst = d; ak; a; bk; b }
      | Ir.Store (a, ix, v) ->
        let ak, a = enc a and bk, b = enc ix and ck, c = enc v in
        { nop with op = OStore; ak; a; bk; b; ck; c }
      | Ir.Alen (d, a) ->
        let ak, a = enc a in
        { nop with op = OAlen; dst = d; ak; a; uses = uses_arr i }
      | Ir.Call (d, g, cargs) ->
        let n = List.length cargs in
        if n > !max_args then max_args := n;
        let args = Array.make (2 * n) 0 in
        List.iteri
          (fun j o ->
            let k, v = enc o in
            args.(2 * j) <- k;
            args.((2 * j) + 1) <- v)
          cargs;
        let callee =
          match Hashtbl.find_opt funtbl g with Some i -> i | None -> -1
        in
        let dst = match d with Some d -> d | None -> -1 in
        { nop with op = OCall; dst; args; callee; sname = g }
      | Ir.Print a ->
        let ak, a = enc a in
        { nop with op = OPrint; ak; a }
    in
    let enc_term (t : Ir.term) : dinstr =
      match t with
      | Ir.Jmp l -> { nop with op = OJmp; dst = target l }
      | Ir.Br (c, tl, el) ->
        let site = !site_count in
        incr site_count;
        let ak, a = enc c in
        { nop with op = OBr; dst = target tl; ak; a; b = target el; c = site }
      | Ir.Ret None -> { nop with op = ORetN }
      | Ir.Ret (Some v) ->
        let ak, a = enc v in
        { nop with op = ORetV; ak; a }
    in
    let body = ref [] in
    List.iter
      (fun (_, (b : Ir.block)) ->
        List.iter (fun i -> body := enc_instr i :: !body) b.Ir.instrs;
        body := enc_term b.Ir.term :: !body)
      blocks;
    (* bad slots were assigned pcs nreal, nreal+1, ... in discovery
       order; [bad_slots] is that list reversed *)
    List.iter
      (fun l -> body := { nop with op = OBadLabel; a = l } :: !body)
      (List.rev !bad_slots);
    {
      fname;
      params = Array.of_list f.Ir.params;
      nregs = f.Ir.nregs;
      code = Array.of_list (List.rev !body);
      entry_pc = target f.Ir.entry;
      locals = Array.of_list f.Ir.locals;
    }
  in
  (* explicit loop: site ids must be assigned in SMap order *)
  let dfuncs = ref [] in
  List.iter (fun fb -> dfuncs := decode_func fb :: !dfuncs) fun_list;
  {
    funcs = Array.of_list (List.rev !dfuncs);
    main_idx =
      (match Hashtbl.find_opt funtbl p.main with Some i -> i | None -> -1);
    main_name = p.main;
    globals = Array.of_list p.globals;
    fpool = Array.of_list (List.rev !fpool);
    names = Array.of_list (List.rev !names);
    max_args = !max_args;
    nsites = !site_count;
  }

(* the one-time IR -> bytecode translation, as an Obs span (cat
   "decode") with the translated size as an end arg *)
let decode_ms = Obs.Metrics.histogram "decode.translate_ms"
let decode_count = Obs.Metrics.counter "decode.programs"

let decode (p : Ir.program) : t =
  Obs.Metrics.incr decode_count;
  Obs.span_with ~cat:"decode" ~hist:decode_ms "decode.translate"
    ~end_args:(fun dp ->
      [ ("funcs", Obs.Trace.Int (Array.length dp.funcs)) ])
    (fun () -> decode_program p)

let code_size (dp : t) =
  Array.fold_left (fun acc df -> acc + Array.length df.code) 0 dp.funcs

(* ------------------------------------------------------------------ *)
(* Runtime *)

let trap fmt = Fmt.kstr (fun s -> raise (Interp.Trap s)) fmt

let arr_len = Interp.arr_len

let dummy_arr =
  { Interp.payload = Interp.IA [||]; base = 0; esize = 8; mask32 = false }

(* same base addresses as Interp.init_globals: the machine simulator
   keys its caches on these *)
let init_globals (dp : t) : Interp.arr array =
  let n = Array.length dp.globals in
  let out = Array.make n dummy_arr in
  let addr = ref Interp.global_base in
  for i = 0 to n - 1 do
    let g = dp.globals.(i) in
    let payload =
      match g.Ir.gelt with
      | Ir.EltInt | Ir.EltInt32 -> Interp.IA (Array.map int_of_float g.Ir.ginit)
      | Ir.EltFloat -> Interp.FA (Array.copy g.Ir.ginit)
    in
    let esize = match g.Ir.gelt with Ir.EltInt32 -> 4 | _ -> 8 in
    let mask32 = g.Ir.gelt = Ir.EltInt32 in
    out.(i) <- { Interp.payload; base = !addr; esize; mask32 };
    addr := !addr + Interp.align64 (g.Ir.gsize * esize)
  done;
  out

type frame = {
  df : dfunc;
  tags : int array;
  ints : int array;
  flts : float array;
  arrs : Interp.arr array;
  mutable locals : Interp.arr array;
}

type rt = {
  dp : t;
  garr : Interp.arr array;
  buf : Buffer.t;
  mutable fuel : int;
  mutable steps : int;
  mutable sp : int;
  mutable s_tag : int;
  mutable s_int : int;
  mutable s_flt : float;
  mutable s_arr : Interp.arr;
  arg_tags : int array;
  arg_ints : int array;
  arg_flts : float array;
  arg_arrs : Interp.arr array;
}

let make_rt ?(fuel = Interp.default_fuel) (dp : t) : rt =
  let na = max 1 dp.max_args in
  {
    dp;
    garr = init_globals dp;
    buf = Buffer.create 256;
    fuel;
    steps = 0;
    sp = Interp.stack_base;
    s_tag = 0;
    s_int = 0;
    s_flt = 0.0;
    s_arr = dummy_arr;
    arg_tags = Array.make na 0;
    arg_ints = Array.make na 0;
    arg_flts = Array.make na 0.0;
    arg_arrs = Array.make na dummy_arr;
  }

let undef_trap fr r : 'a = trap "%s: read of undefined r%d" fr.df.fname r

(* Cold path: the operand (k, v) failed to produce a [want].  Re-derive
   the reference's trap: operand-evaluation traps (undefined register,
   unknown name) fire first, then "expected <want>, got <value>". *)
let fail_operand rt fr want k v : 'a =
  let got g = trap "expected %s, got %s" want g in
  if k = k_reg then (
    match fr.tags.(v) with
    | 0 -> undef_trap fr v
    | 1 -> got (string_of_int fr.ints.(v))
    | 2 -> got (Printf.sprintf "%.6g" fr.flts.(v))
    | 3 -> got (if fr.ints.(v) <> 0 then "true" else "false")
    | _ -> got "<array>")
  else if k = k_int then got (string_of_int v)
  else if k = k_flt then got (Printf.sprintf "%.6g" rt.dp.fpool.(v))
  else if k = k_bool then got (if v <> 0 then "true" else "false")
  else if k = k_glob || k = k_loc then got "<array>"
  else if k = k_gunk then trap "unknown global %s" rt.dp.names.(v)
  else trap "unknown local array %s in %s" rt.dp.names.(v) fr.df.fname

(* Hot accessors: the tag read is bounds-checked (a malformed register
   index must raise the same Invalid_argument as the reference's
   [regs.(r)]); the payload read shares the index so it is safe. *)

let[@inline] geti rt fr k v : int =
  if k = k_reg then
    if Array.get fr.tags v = 1 then Array.unsafe_get fr.ints v
    else fail_operand rt fr "int" k v
  else if k = k_int then v
  else fail_operand rt fr "int" k v

let[@inline] getf rt fr k v : float =
  if k = k_reg then
    if Array.get fr.tags v = 2 then Array.unsafe_get fr.flts v
    else fail_operand rt fr "float" k v
  else if k = k_flt then Array.unsafe_get rt.dp.fpool v
  else fail_operand rt fr "float" k v

let[@inline] getb rt fr k v : bool =
  if k = k_reg then
    if Array.get fr.tags v = 3 then Array.unsafe_get fr.ints v <> 0
    else fail_operand rt fr "bool" k v
  else if k = k_bool then v <> 0
  else fail_operand rt fr "bool" k v

let[@inline] geta rt fr k v : Interp.arr =
  if k = k_reg then
    if Array.get fr.tags v = 4 then Array.unsafe_get fr.arrs v
    else fail_operand rt fr "array" k v
  else if k = k_glob then Array.unsafe_get rt.garr v
  else if k = k_loc then Array.unsafe_get fr.locals v
  else fail_operand rt fr "array" k v

let[@inline] stag rt fr k v : int =
  if k = k_reg then (
    let tg = Array.get fr.tags v in
    if tg = 0 then undef_trap fr v else tg)
  else if k = k_gunk then trap "unknown global %s" rt.dp.names.(v)
  else if k = k_lunk then
    trap "unknown local array %s in %s" rt.dp.names.(v) fr.df.fname
  else if k = k_glob || k = k_loc then 4
  else k (* k_int/k_flt/k_bool coincide with tags 1/2/3 *)

let[@inline] getbp fr k v : bool =
  if k = k_reg then Array.unsafe_get fr.ints v <> 0 else v <> 0

let[@inline] eval_any rt fr k v : unit =
  if k = k_reg then (
    let tg = Array.get fr.tags v in
    if tg = 0 then undef_trap fr v;
    rt.s_tag <- tg;
    match tg with
    | 2 -> rt.s_flt <- Array.unsafe_get fr.flts v
    | 4 -> rt.s_arr <- Array.unsafe_get fr.arrs v
    | _ -> rt.s_int <- Array.unsafe_get fr.ints v)
  else if k = k_int then (
    rt.s_tag <- 1;
    rt.s_int <- v)
  else if k = k_flt then (
    rt.s_tag <- 2;
    rt.s_flt <- Array.unsafe_get rt.dp.fpool v)
  else if k = k_bool then (
    rt.s_tag <- 3;
    rt.s_int <- v)
  else if k = k_glob then (
    rt.s_tag <- 4;
    rt.s_arr <- Array.unsafe_get rt.garr v)
  else if k = k_loc then (
    rt.s_tag <- 4;
    rt.s_arr <- Array.unsafe_get fr.locals v)
  else if k = k_gunk then trap "unknown global %s" rt.dp.names.(v)
  else trap "unknown local array %s in %s" rt.dp.names.(v) fr.df.fname

let[@inline] set_int fr d n =
  fr.tags.(d) <- 1;
  Array.unsafe_set fr.ints d n

let[@inline] set_flt fr d f =
  fr.tags.(d) <- 2;
  Array.unsafe_set fr.flts d f

let[@inline] set_bool fr d b =
  fr.tags.(d) <- 3;
  Array.unsafe_set fr.ints d (if b then 1 else 0)

let[@inline] set_scratch rt fr d =
  let tg = rt.s_tag in
  fr.tags.(d) <- tg;
  match tg with
  | 2 -> Array.unsafe_set fr.flts d rt.s_flt
  | 4 -> Array.unsafe_set fr.arrs d rt.s_arr
  | _ -> Array.unsafe_set fr.ints d rt.s_int

let[@inline] save_arg rt j =
  rt.arg_tags.(j) <- rt.s_tag;
  match rt.s_tag with
  | 2 -> rt.arg_flts.(j) <- rt.s_flt
  | 4 -> rt.arg_arrs.(j) <- rt.s_arr
  | _ -> rt.arg_ints.(j) <- rt.s_int

let new_frame (dp : t) fidx : frame =
  let df = dp.funcs.(fidx) in
  let nr = max 1 df.nregs in
  {
    df;
    tags = Array.make nr 0;
    ints = Array.make nr 0;
    flts = Array.make nr 0.0;
    arrs = Array.make nr dummy_arr;
    locals = [||];
  }

let bind_params rt fr n =
  for j = 0 to n - 1 do
    let r = fr.df.params.(j) in
    let tg = rt.arg_tags.(j) in
    fr.tags.(r) <- tg;
    match tg with
    | 2 -> Array.unsafe_set fr.flts r rt.arg_flts.(j)
    | 4 -> Array.unsafe_set fr.arrs r rt.arg_arrs.(j)
    | _ -> Array.unsafe_set fr.ints r rt.arg_ints.(j)
  done

let alloc_locals rt (df : dfunc) : Interp.arr array =
  let n = Array.length df.locals in
  let out = Array.make n dummy_arr in
  for i = 0 to n - 1 do
    let _, elt, size = df.locals.(i) in
    let base = rt.sp in
    rt.sp <- rt.sp + Interp.align64 (size * 8);
    if rt.sp > Interp.stack_base + 0x8000000 then trap "stack overflow";
    let payload =
      match elt with
      | Ir.EltInt | Ir.EltInt32 -> Interp.IA (Array.make size 0)
      | Ir.EltFloat -> Interp.FA (Array.make size 0.0)
    in
    out.(i) <- { Interp.payload; base; esize = 8; mask32 = false }
  done;
  out

let shift_ok n = n >= 0 && n <= 62

let result_of rt : Interp.result =
  let ret =
    match rt.s_tag with
    | 0 -> Interp.VUndef
    | 1 -> Interp.VInt rt.s_int
    | 2 -> Interp.VFloat rt.s_flt
    | 3 -> Interp.VBool (rt.s_int <> 0)
    | _ -> Interp.VArr rt.s_arr
  in
  { Interp.ret; output = Buffer.contents rt.buf; steps = rt.steps }

(* ------------------------------------------------------------------ *)
(* The plain dispatch loop (no machine model).  Mach.Flatsim duplicates
   this loop's shape with timing/counter accounting fused into every
   arm; changes here almost certainly need a mirror change there, and
   the differential tests will catch a missed one. *)

let do_icmp rt fr di c =
  (* reference shape: both operands read first (tuple, right-to-left),
     then the bool/bool case, else int conversion — again B first *)
  let tb = stag rt fr di.bk di.b in
  let ta = stag rt fr di.ak di.a in
  if ta = 3 && tb = 3 then (
    if c >= 2 then trap "ordered comparison on bool";
    let x = getbp fr di.ak di.a and y = getbp fr di.bk di.b in
    set_bool fr di.dst (if c = 0 then x = y else x <> y))
  else
    let b = geti rt fr di.bk di.b in
    let a = geti rt fr di.ak di.a in
    set_bool fr di.dst
      (match c with
      | 0 -> a = b
      | 1 -> a <> b
      | 2 -> a < b
      | 3 -> a <= b
      | 4 -> a > b
      | _ -> a >= b)

let do_fcmp rt fr di c =
  let b = getf rt fr di.bk di.b in
  let a = getf rt fr di.ak di.a in
  set_bool fr di.dst
    (match c with
    | 0 -> a = b
    | 1 -> a <> b
    | 2 -> a < b
    | 3 -> a <= b
    | 4 -> a > b
    | _ -> a >= b)

let rec exec rt (fr : frame) : unit =
  let code = fr.df.code in
  let pc = ref fr.df.entry_pc in
  let running = ref true in
  while !running do
    (* pc stays in bounds by construction: every block ends in a
       terminator and all branch targets are decoded offsets *)
    let di = Array.unsafe_get code !pc in
    rt.fuel <- rt.fuel - 1;
    rt.steps <- rt.steps + 1;
    if rt.fuel <= 0 then raise Interp.Out_of_fuel;
    incr pc;
    match di.op with
    | OAdd ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      set_int fr di.dst (a + b)
    | OSub ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      set_int fr di.dst (a - b)
    | OMul ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      set_int fr di.dst (a * b)
    | ODiv ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      if b = 0 then trap "division by zero" else set_int fr di.dst (a / b)
    | ORem ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      if b = 0 then trap "remainder by zero" else set_int fr di.dst (a mod b)
    | OAnd ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      set_int fr di.dst (a land b)
    | OOr ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      set_int fr di.dst (a lor b)
    | OXor ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      set_int fr di.dst (a lxor b)
    | OShl ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      if shift_ok b then set_int fr di.dst (a lsl b)
      else trap "shift count %d" b
    | OShr ->
      let b = geti rt fr di.bk di.b in
      let a = geti rt fr di.ak di.a in
      if shift_ok b then set_int fr di.dst (a asr b)
      else trap "shift count %d" b
    | OFAdd ->
      let b = getf rt fr di.bk di.b in
      let a = getf rt fr di.ak di.a in
      set_flt fr di.dst (a +. b)
    | OFSub ->
      let b = getf rt fr di.bk di.b in
      let a = getf rt fr di.ak di.a in
      set_flt fr di.dst (a -. b)
    | OFMul ->
      let b = getf rt fr di.bk di.b in
      let a = getf rt fr di.ak di.a in
      set_flt fr di.dst (a *. b)
    | OFDiv ->
      let b = getf rt fr di.bk di.b in
      let a = getf rt fr di.ak di.a in
      set_flt fr di.dst (a /. b)
    | OIeq -> do_icmp rt fr di 0
    | OIne -> do_icmp rt fr di 1
    | OIlt -> do_icmp rt fr di 2
    | OIle -> do_icmp rt fr di 3
    | OIgt -> do_icmp rt fr di 4
    | OIge -> do_icmp rt fr di 5
    | OFeq -> do_fcmp rt fr di 0
    | OFne -> do_fcmp rt fr di 1
    | OFlt -> do_fcmp rt fr di 2
    | OFle -> do_fcmp rt fr di 3
    | OFgt -> do_fcmp rt fr di 4
    | OFge -> do_fcmp rt fr di 5
    | ONot ->
      let x = getb rt fr di.ak di.a in
      set_bool fr di.dst (not x)
    | OMov ->
      eval_any rt fr di.ak di.a;
      set_scratch rt fr di.dst
    | OI2f ->
      let a = geti rt fr di.ak di.a in
      set_flt fr di.dst (float_of_int a)
    | OF2i ->
      let f = getf rt fr di.ak di.a in
      if Float.is_nan f || Float.abs f > 4.6e18 then
        trap "float-to-int overflow on %g" f
      else set_int fr di.dst (int_of_float f)
    | OLoad ->
      let ix = geti rt fr di.bk di.b in
      let a = geta rt fr di.ak di.a in
      let len = arr_len a in
      if ix < 0 || ix >= len then
        trap "load out of bounds: index %d, length %d" ix len;
      (match a.Interp.payload with
      | Interp.IA x -> set_int fr di.dst (Array.unsafe_get x ix)
      | Interp.FA x -> set_flt fr di.dst (Array.unsafe_get x ix))
    | OStore ->
      (* value, then index, then array — right-to-left like the oracle *)
      eval_any rt fr di.ck di.c;
      let vtag = rt.s_tag in
      let vi = rt.s_int and vf = rt.s_flt in
      let ix = geti rt fr di.bk di.b in
      let a = geta rt fr di.ak di.a in
      let len = arr_len a in
      if ix < 0 || ix >= len then
        trap "store out of bounds: index %d, length %d" ix len;
      (match a.Interp.payload with
      | Interp.IA x ->
        if vtag = 1 then
          Array.unsafe_set x ix
            (if a.Interp.mask32 then vi land 0xFFFFFFFF else vi)
        else trap "storing non-int into int array"
      | Interp.FA x ->
        if vtag = 2 then Array.unsafe_set x ix vf
        else trap "storing non-float into float array")
    | OAlen ->
      let a = geta rt fr di.ak di.a in
      set_int fr di.dst (arr_len a)
    | OCall ->
      let args = di.args in
      let nargs = Array.length args / 2 in
      for j = 0 to nargs - 1 do
        eval_any rt fr
          (Array.unsafe_get args (2 * j))
          (Array.unsafe_get args ((2 * j) + 1));
        save_arg rt j
      done;
      if di.callee < 0 then trap "call to unknown function %s" di.sname;
      do_call rt di.callee nargs;
      if di.dst >= 0 then set_scratch rt fr di.dst
    | OPrint ->
      eval_any rt fr di.ak di.a;
      Buffer.add_string rt.buf
        (match rt.s_tag with
        | 1 -> string_of_int rt.s_int
        | 2 -> Printf.sprintf "%.6g" rt.s_flt
        | 3 -> if rt.s_int <> 0 then "true" else "false"
        | _ -> "<array>");
      Buffer.add_char rt.buf '\n'
    | OJmp -> pc := di.dst
    | OBr ->
      let taken = getb rt fr di.ak di.a in
      pc := if taken then di.dst else di.b
    | ORetN ->
      rt.s_tag <- 0;
      running := false
    | ORetV ->
      eval_any rt fr di.ak di.a;
      running := false
    | OBadLabel ->
      raise
        (Invalid_argument
           (Printf.sprintf "Ir.find_block: no block %d in %s" di.a
              fr.df.fname))
  done

and do_call rt fidx nargs : unit =
  let df = rt.dp.funcs.(fidx) in
  if nargs <> Array.length df.params then
    trap "arity mismatch calling %s" df.fname;
  let fr = new_frame rt.dp fidx in
  bind_params rt fr nargs;
  let saved_sp = rt.sp in
  fr.locals <- alloc_locals rt df;
  exec rt fr;
  rt.sp <- saved_sp

(* ------------------------------------------------------------------ *)
(* Entry points *)

let run ?(fuel = Interp.default_fuel) (dp : t) : Interp.result =
  let rt = make_rt ~fuel dp in
  if dp.main_idx < 0 then trap "call to unknown function %s" dp.main_name;
  do_call rt dp.main_idx 0;
  result_of rt

let run_program ?fuel (p : Ir.program) : Interp.result = run ?fuel (decode p)

let observe ?fuel (p : Ir.program) : Interp.observation =
  match run_program ?fuel p with
  | r -> Interp.Finished (Interp.value_to_string r.Interp.ret, r.Interp.output)
  | exception Interp.Trap m -> Interp.Trapped m
  | exception Interp.Out_of_fuel -> Interp.Diverged
