(** Reference execution engine for the IR.

    Shared between the functional interpreter (the semantics oracle of the
    differential tests) and the cycle-level simulator: the simulator
    supplies {!hooks} observing every executed instruction, memory access
    (with byte address) and conditional branch (with a stable site id).
    With {!no_hooks} this is a plain interpreter.

    Semantics: native wrap-around ints; division/remainder by zero,
    out-of-bounds accesses, out-of-range shifts ([not in 0..62]) and reads
    of never-written registers trap; local arrays and globals beyond their
    initializers are zero-initialized. *)

type payload = IA of int array | FA of float array

type arr = {
  payload : payload;
  base : int;     (** byte address in the simulated address space *)
  esize : int;    (** element size: 8, or 4 for packed arrays *)
  mask32 : bool;  (** packed: stores keep only the low 32 bits *)
}

type value =
  | VUndef
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VArr of arr

exception Trap of string
exception Out_of_fuel

type hooks = {
  on_instr : Ir.instr -> unit;
  on_load : int -> unit;            (** byte address *)
  on_store : int -> unit;
  on_branch : int -> bool -> unit;  (** site id, taken *)
  on_jump : unit -> unit;           (** unconditional jmp / ret *)
}

val no_hooks : hooks

type site_table = {
  sites : (string * int, int) Hashtbl.t;
  mutable count : int;
}

(** stable per-program ids for conditional-branch sites (predictor keys) *)
val build_sites : Ir.program -> site_table

type result = {
  ret : value;
  output : string;
  steps : int;  (** dynamic instruction count, terminators included *)
}

val value_to_string : value -> string
val arr_len : arr -> int
val default_fuel : int

(** {2 Address-space layout}

    Shared with the flat engine ({!Decode}): both engines must hand the
    machine simulator identical byte addresses. *)

val global_base : int
val stack_base : int
val align64 : int -> int

(** Run a program from its main function.
    @raise Trap on runtime errors
    @raise Out_of_fuel when the step budget is exhausted *)
val run : ?fuel:int -> ?hooks:hooks -> Ir.program -> result

(** {2 Observable behaviour}

    What optimization passes must preserve: the outcome kind, return
    value and printed output.  Trap messages are not compared (their
    wording may change under optimization); the {e fact} of trapping is
    the observable. *)

type observation =
  | Finished of string * string  (** return value, printed output *)
  | Trapped of string
  | Diverged

val observe : ?fuel:int -> Ir.program -> observation
val equal_observation : observation -> observation -> bool
val pp_observation : Format.formatter -> observation -> unit
