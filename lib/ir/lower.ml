(* Lowering from the Mira AST to the three-address IR.

   Scalar variables are mapped to virtual registers (one per declaration;
   shadowed declarations get fresh registers).  Local arrays are hoisted to
   function-level frame slots, with name mangling so that shadowed array
   declarations in inner scopes stay distinct.  Short-circuit operators
   lower to control flow.

   The block structure produced for loops is deliberately canonical —
   a dedicated header block holding the exit test, a body sub-graph and a
   dedicated latch jump back to the header — because the loop passes
   (unrolling, LICM) key on natural loops with that shape. *)

exception Error of string

module SMap = Map.Make (String)

type binding =
  | BScalar of Ir.reg
  | BArr of Ir.operand   (* ALoc, AGlob, or Reg for array params *)

type st = {
  mutable nregs : int;
  mutable nlabels : int;
  mutable blocks : Ir.block Ir.LMap.t;
  mutable cur_label : Ir.label;
  mutable cur_instrs : Ir.instr list;  (* reverse order *)
  mutable locals : (string * Ir.elt * int) list;
  mutable mangle : int;
  mutable finished : bool;  (* current block already terminated *)
  fsigs : (string, Ast.ty list * Ast.ty option) Hashtbl.t;
}

let fresh_reg st =
  let r = st.nregs in
  st.nregs <- st.nregs + 1;
  r

let fresh_label st =
  let l = st.nlabels in
  st.nlabels <- st.nlabels + 1;
  l

let emit st i =
  if not st.finished then st.cur_instrs <- i :: st.cur_instrs

let finish st term =
  if not st.finished then begin
    st.blocks <-
      Ir.LMap.add st.cur_label
        { Ir.instrs = List.rev st.cur_instrs; term }
        st.blocks;
    st.finished <- true
  end

let start_block st l =
  st.cur_label <- l;
  st.cur_instrs <- [];
  st.finished <- false

(* Type of an expression, as needed to choose int vs float opcodes.  The
   program is already type checked, so this local inference cannot fail on
   well-typed input. *)
let rec ty_of env st (x : Ast.expr) : Ast.ty =
  match x.e with
  | Ast.Int _ -> Ast.TInt
  | Ast.Float _ -> Ast.TFloat
  | Ast.Bool _ -> Ast.TBool
  | Ast.Var v -> begin
    match SMap.find_opt v env with
    | Some (BScalar _, ty) -> ty
    | Some (BArr _, ty) -> ty
    | None -> raise (Error ("lower: unbound " ^ v))
  end
  | Ast.Index (a, _) -> begin
    match SMap.find_opt a env with
    | Some (_, Ast.TArr Ast.EltInt) -> Ast.TInt
    | Some (_, Ast.TArr Ast.EltFloat) -> Ast.TFloat
    | _ -> raise (Error ("lower: bad array " ^ a))
  end
  | Ast.Len _ -> Ast.TInt
  | Ast.Un (Ast.Neg, e) -> ty_of env st e
  | Ast.Un (Ast.Not, _) -> Ast.TBool
  | Ast.Un (Ast.BNot, _) -> Ast.TInt
  | Ast.Un (Ast.FloatOfInt, _) -> Ast.TFloat
  | Ast.Un (Ast.IntOfFloat, _) -> Ast.TInt
  | Ast.Bin ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), l, _) -> ty_of env st l
  | Ast.Bin ((Ast.Rem | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr), _, _)
    -> Ast.TInt
  | Ast.Bin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne
             | Ast.LAnd | Ast.LOr), _, _) -> Ast.TBool
  | Ast.Call (f, _) -> begin
    match Hashtbl.find_opt st.fsigs f with
    | Some (_, Some ty) -> ty
    | Some (_, None) -> raise (Error ("lower: void call in expression " ^ f))
    | None -> raise (Error ("lower: unknown function " ^ f))
  end

let arith_of_binop ~isf (op : Ast.binop) : [ `I of Ir.arith | `F of Ir.farith ]
    =
  match (op, isf) with
  | Ast.Add, false -> `I Ir.Add
  | Ast.Sub, false -> `I Ir.Sub
  | Ast.Mul, false -> `I Ir.Mul
  | Ast.Div, false -> `I Ir.Div
  | Ast.Rem, false -> `I Ir.Rem
  | Ast.BAnd, false -> `I Ir.And
  | Ast.BOr, false -> `I Ir.Or
  | Ast.BXor, false -> `I Ir.Xor
  | Ast.Shl, false -> `I Ir.Shl
  | Ast.Shr, false -> `I Ir.Shr
  | Ast.Add, true -> `F Ir.FAdd
  | Ast.Sub, true -> `F Ir.FSub
  | Ast.Mul, true -> `F Ir.FMul
  | Ast.Div, true -> `F Ir.FDiv
  | _ -> raise (Error "lower: not an arithmetic operator")

let cmp_of_binop : Ast.binop -> Ir.cmp = function
  | Ast.Lt -> Ir.Lt
  | Ast.Le -> Ir.Le
  | Ast.Gt -> Ir.Gt
  | Ast.Ge -> Ir.Ge
  | Ast.Eq -> Ir.Eq
  | Ast.Ne -> Ir.Ne
  | _ -> raise (Error "lower: not a comparison")

type env = (binding * Ast.ty) SMap.t

let rec lower_expr st (env : env) (x : Ast.expr) : Ir.operand =
  match x.e with
  | Ast.Int n -> Ir.Cint n
  | Ast.Float f -> Ir.Cfloat f
  | Ast.Bool b -> Ir.Cbool b
  | Ast.Var v -> begin
    match SMap.find_opt v env with
    | Some (BScalar r, _) -> Ir.Reg r
    | Some (BArr op, _) -> op
    | None -> raise (Error ("lower: unbound " ^ v))
  end
  | Ast.Index (a, i) ->
    let arr = arr_operand env a in
    let idx = lower_expr st env i in
    let d = fresh_reg st in
    emit st (Ir.Load (d, arr, idx));
    Ir.Reg d
  | Ast.Len a ->
    let arr = arr_operand env a in
    let d = fresh_reg st in
    emit st (Ir.Alen (d, arr));
    Ir.Reg d
  | Ast.Un (Ast.Neg, e) ->
    let v = lower_expr st env e in
    let d = fresh_reg st in
    (match ty_of env st e with
     | Ast.TFloat -> emit st (Ir.Fbin (Ir.FSub, d, Ir.Cfloat 0.0, v))
     | _ -> emit st (Ir.Bin (Ir.Sub, d, Ir.Cint 0, v)));
    Ir.Reg d
  | Ast.Un (Ast.Not, e) ->
    let v = lower_expr st env e in
    let d = fresh_reg st in
    emit st (Ir.Not (d, v));
    Ir.Reg d
  | Ast.Un (Ast.BNot, e) ->
    let v = lower_expr st env e in
    let d = fresh_reg st in
    emit st (Ir.Bin (Ir.Xor, d, v, Ir.Cint (-1)));
    Ir.Reg d
  | Ast.Un (Ast.FloatOfInt, e) ->
    let v = lower_expr st env e in
    let d = fresh_reg st in
    emit st (Ir.I2f (d, v));
    Ir.Reg d
  | Ast.Un (Ast.IntOfFloat, e) ->
    let v = lower_expr st env e in
    let d = fresh_reg st in
    emit st (Ir.F2i (d, v));
    Ir.Reg d
  | Ast.Bin (Ast.LAnd, l, r) ->
    (* d = l; if d then d = r *)
    let d = fresh_reg st in
    let vl = lower_expr st env l in
    emit st (Ir.Mov (d, vl));
    let rhs = fresh_label st and join = fresh_label st in
    finish st (Ir.Br (Ir.Reg d, rhs, join));
    start_block st rhs;
    let vr = lower_expr st env r in
    emit st (Ir.Mov (d, vr));
    finish st (Ir.Jmp join);
    start_block st join;
    Ir.Reg d
  | Ast.Bin (Ast.LOr, l, r) ->
    let d = fresh_reg st in
    let vl = lower_expr st env l in
    emit st (Ir.Mov (d, vl));
    let rhs = fresh_label st and join = fresh_label st in
    finish st (Ir.Br (Ir.Reg d, join, rhs));
    start_block st rhs;
    let vr = lower_expr st env r in
    emit st (Ir.Mov (d, vr));
    finish st (Ir.Jmp join);
    start_block st join;
    Ir.Reg d
  | Ast.Bin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, l, r)
    ->
    let isf = ty_of env st l = Ast.TFloat in
    let vl = lower_expr st env l in
    let vr = lower_expr st env r in
    let d = fresh_reg st in
    let c = cmp_of_binop op in
    if isf then emit st (Ir.Fcmp (c, d, vl, vr))
    else emit st (Ir.Icmp (c, d, vl, vr));
    Ir.Reg d
  | Ast.Bin (op, l, r) ->
    let isf = ty_of env st l = Ast.TFloat in
    let vl = lower_expr st env l in
    let vr = lower_expr st env r in
    let d = fresh_reg st in
    (match arith_of_binop ~isf op with
     | `I o -> emit st (Ir.Bin (o, d, vl, vr))
     | `F o -> emit st (Ir.Fbin (o, d, vl, vr)));
    Ir.Reg d
  | Ast.Call (f, args) ->
    let vargs = List.map (lower_expr st env) args in
    let d = fresh_reg st in
    emit st (Ir.Call (Some d, f, vargs));
    Ir.Reg d

and arr_operand env a : Ir.operand =
  match SMap.find_opt a env with
  | Some (BArr op, _) -> op
  | Some (BScalar _, _) -> raise (Error ("lower: scalar used as array: " ^ a))
  | None -> raise (Error ("lower: unbound array " ^ a))

let rec lower_stmt st (env : env) (x : Ast.stmt) : env =
  match x.s with
  | Ast.SDecl (v, ty, e) ->
    let value = lower_expr st env e in
    let r = fresh_reg st in
    emit st (Ir.Mov (r, value));
    SMap.add v (BScalar r, ty) env
  | Ast.SArrDecl (v, elt, n) ->
    let mangled = if st.mangle = 0 then v else Printf.sprintf "%s#%d" v st.mangle in
    (* ensure uniqueness among locals *)
    let mangled =
      if List.exists (fun (m, _, _) -> m = mangled) st.locals then begin
        st.mangle <- st.mangle + 1;
        Printf.sprintf "%s#%d" v st.mangle
      end
      else mangled
    in
    let ielt = match elt with Ast.EltInt -> Ir.EltInt | Ast.EltFloat -> Ir.EltFloat in
    st.locals <- (mangled, ielt, n) :: st.locals;
    SMap.add v (BArr (Ir.ALoc mangled), Ast.TArr elt) env
  | Ast.SAssign (v, e) -> begin
    match SMap.find_opt v env with
    | Some (BScalar r, _) ->
      let value = lower_expr st env e in
      emit st (Ir.Mov (r, value));
      env
    | _ -> raise (Error ("lower: bad assignment target " ^ v))
  end
  | Ast.SStore (a, i, e) ->
    let arr = arr_operand env a in
    let idx = lower_expr st env i in
    let v = lower_expr st env e in
    emit st (Ir.Store (arr, idx, v));
    env
  | Ast.SIf (c, t, []) ->
    let vc = lower_expr st env c in
    let lt = fresh_label st and join = fresh_label st in
    finish st (Ir.Br (vc, lt, join));
    start_block st lt;
    ignore (lower_body st env t);
    finish st (Ir.Jmp join);
    start_block st join;
    env
  | Ast.SIf (c, t, e) ->
    let vc = lower_expr st env c in
    let lt = fresh_label st and le = fresh_label st and join = fresh_label st in
    finish st (Ir.Br (vc, lt, le));
    start_block st lt;
    ignore (lower_body st env t);
    finish st (Ir.Jmp join);
    start_block st le;
    ignore (lower_body st env e);
    finish st (Ir.Jmp join);
    start_block st join;
    env
  | Ast.SWhile (c, b) ->
    let header = fresh_label st in
    let body = fresh_label st in
    let exit = fresh_label st in
    finish st (Ir.Jmp header);
    start_block st header;
    let vc = lower_expr st env c in
    finish st (Ir.Br (vc, body, exit));
    start_block st body;
    ignore (lower_body st env b);
    finish st (Ir.Jmp header);
    start_block st exit;
    env
  | Ast.SFor (v, lo, hi, step, b) ->
    (* Evaluate bounds and step once, before the loop. *)
    let vlo = lower_expr st env lo in
    let vr = fresh_reg st in
    emit st (Ir.Mov (vr, vlo));
    let vhi = lower_expr st env hi in
    let hr = fresh_reg st in
    emit st (Ir.Mov (hr, vhi));
    let vstep = lower_expr st env step in
    let sr = fresh_reg st in
    emit st (Ir.Mov (sr, vstep));
    let env' = SMap.add v (BScalar vr, Ast.TInt) env in
    let header = fresh_label st in
    let body = fresh_label st in
    let exit = fresh_label st in
    finish st (Ir.Jmp header);
    start_block st header;
    let c = fresh_reg st in
    emit st (Ir.Icmp (Ir.Lt, c, Ir.Reg vr, Ir.Reg hr));
    finish st (Ir.Br (Ir.Reg c, body, exit));
    start_block st body;
    ignore (lower_body st env' b);
    emit st (Ir.Bin (Ir.Add, vr, Ir.Reg vr, Ir.Reg sr));
    finish st (Ir.Jmp header);
    start_block st exit;
    env
  | Ast.SReturn None ->
    finish st (Ir.Ret None);
    (* start a fresh unreachable block to absorb trailing statements *)
    start_block st (fresh_label st);
    env
  | Ast.SReturn (Some e) ->
    let v = lower_expr st env e in
    finish st (Ir.Ret (Some v));
    start_block st (fresh_label st);
    env
  | Ast.SExpr e -> begin
    match e.e with
    | Ast.Call (f, args) ->
      let vargs = List.map (lower_expr st env) args in
      let dst =
        match Hashtbl.find_opt st.fsigs f with
        | Some (_, Some _) -> Some (fresh_reg st)
        | _ -> None
      in
      emit st (Ir.Call (dst, f, vargs));
      env
    | _ ->
      ignore (lower_expr st env e);
      env
  end
  | Ast.SPrint e ->
    let v = lower_expr st env e in
    emit st (Ir.Print v);
    env

and lower_body st env stmts =
  (* statements update the env sequentially; the scope ends afterwards *)
  ignore (List.fold_left (lower_stmt st) env stmts)

let lower_func fsigs (globals : Ast.global list) (f : Ast.func) : Ir.func =
  let st =
    {
      nregs = 0;
      nlabels = 0;
      blocks = Ir.LMap.empty;
      cur_label = 0;
      cur_instrs = [];
      locals = [];
      mangle = 0;
      finished = true;
      fsigs;
    }
  in
  let entry = fresh_label st in
  start_block st entry;
  (* Bind globals first, then parameters (parameters shadow). *)
  let env =
    List.fold_left
      (fun env (g : Ast.global) ->
        SMap.add g.Ast.gname (BArr (Ir.AGlob g.Ast.gname), Ast.TArr g.Ast.gelt) env)
      SMap.empty globals
  in
  let params_regs = ref [] in
  let env =
    List.fold_left
      (fun env (n, ty) ->
        let r = fresh_reg st in
        params_regs := r :: !params_regs;
        match ty with
        | Ast.TArr _ -> SMap.add n (BArr (Ir.Reg r), ty) env
        | _ -> SMap.add n (BScalar r, ty) env)
      env f.Ast.params
  in
  lower_body st env f.Ast.body;
  (* Implicit return at the end of the function body. *)
  (match f.Ast.ret with
   | None -> finish st (Ir.Ret None)
   | Some Ast.TInt -> finish st (Ir.Ret (Some (Ir.Cint 0)))
   | Some Ast.TFloat -> finish st (Ir.Ret (Some (Ir.Cfloat 0.0)))
   | Some Ast.TBool -> finish st (Ir.Ret (Some (Ir.Cbool false)))
   | Some (Ast.TArr _) -> raise (Error "lower: functions cannot return arrays"));
  {
    Ir.name = f.Ast.fname;
    params = List.rev !params_regs;
    nregs = st.nregs;
    entry;
    blocks = st.blocks;
    nlabels = st.nlabels;
    locals = List.rev st.locals;
  }

let lower (p : Ast.program) : Ir.program =
  let fsigs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.replace fsigs f.Ast.fname (List.map snd f.Ast.params, f.Ast.ret))
    p.Ast.funcs;
  let funcs =
    List.fold_left
      (fun acc (f : Ast.func) ->
        Ir.SMap.add f.Ast.fname (lower_func fsigs p.Ast.globals f) acc)
      Ir.SMap.empty p.Ast.funcs
  in
  let globals =
    List.map
      (fun (g : Ast.global) ->
        let init = Array.make g.Ast.gsize 0.0 in
        List.iteri (fun i v -> if i < g.Ast.gsize then init.(i) <- v) g.Ast.ginit;
        {
          Ir.gname = g.Ast.gname;
          gelt =
            (match g.Ast.gelt with
             | Ast.EltInt -> Ir.EltInt
             | Ast.EltFloat -> Ir.EltFloat);
          gsize = g.Ast.gsize;
          ginit = init;
        })
      p.Ast.globals
  in
  { Ir.globals; funcs; main = "main" }

(* Front-end convenience: parse, typecheck, lower.  Each stage is an
   Obs span (cat "frontend") and a duration histogram, so a trace of any
   pipeline shows where front-end time goes. *)
let parse_ms = Obs.Metrics.histogram "frontend.parse_ms"
let typecheck_ms = Obs.Metrics.histogram "frontend.typecheck_ms"
let lower_ms = Obs.Metrics.histogram "frontend.lower_ms"

let compile_source (src : string) : (Ir.program, string) result =
  match
    Obs.span ~cat:"frontend" ~hist:parse_ms "frontend.parse" (fun () ->
        Parser.parse_result src)
  with
  | Error e -> Error e
  | Ok ast -> (
    match
      Obs.span ~cat:"frontend" ~hist:typecheck_ms "frontend.typecheck"
        (fun () -> Typecheck.check_result ast)
    with
    | Error e -> Error e
    | Ok () -> (
      match
        Obs.span ~cat:"frontend" ~hist:lower_ms "frontend.lower" (fun () ->
            lower ast)
      with
      | ir -> Ok ir
      | exception Error e -> Error ("lowering error: " ^ e)))

let compile_source_exn src =
  match compile_source src with
  | Ok p -> p
  | Error e -> failwith e
