(** Pre-decoded flat execution engine.

    {!decode} translates an {!Ir.program} once into a flat array bytecode:
    one [dinstr] record per static instruction {e and} terminator, with

    - operands pre-resolved to (kind, payload) pairs — register slot,
      inline int/bool immediate, float-pool index, or interned
      global/local array index — so the hot loop never touches an
      [Ir.operand] or a hashtable;
    - branch targets compiled to code offsets and conditional-branch
      sites numbered exactly like {!Interp.build_sites} (so the machine
      simulator's predictor sees identical site ids);
    - callee names resolved to function indices;
    - the registers read by each simple ALU op precomputed as an [int
      array] (the machine simulator's issue model consumes these without
      the per-dynamic-instruction [Ir.uses_of] list allocation).

    {!run} executes the decoded form on unboxed register files: per
    frame, an [int array] (ints and bools), a [float array], an array of
    array handles, and a byte-sized tag plan tracking the dynamic type of
    every register.  The tag plan — rather than a fully static type
    assignment — is what preserves the reference interpreter's exact
    semantics on {e hostile} inputs: reading a never-written register,
    int/float/bool confusion, and unknown global/local/function names
    all trap with the same messages as {!Interp.run}.  (A static plan
    would be sound only for well-typed lowered code, and the fuzzer
    feeds both engines deliberately broken programs.)

    The flat engine is bit-identical to {!Interp.run} on return value,
    printed output, [steps], and trap behaviour; the test suite and the
    differential fuzzer enforce this.  {!Interp.run} remains the
    semantics oracle.

    The decoded representation is exposed transparently so that
    [Mach.Flatsim] (the cycle-level flat simulator) can drive its own
    fused timing/accounting loop over the same bytecode. *)

(** dense opcode: instruction kind and sub-operation in one constructor *)
type op =
  | OAdd | OSub | OMul | ODiv | ORem | OAnd | OOr | OXor | OShl | OShr
  | OFAdd | OFSub | OFMul | OFDiv
  | OIeq | OIne | OIlt | OIle | OIgt | OIge
  | OFeq | OFne | OFlt | OFle | OFgt | OFge
  | ONot | OMov | OI2f | OF2i
  | OLoad | OStore | OAlen | OCall | OPrint
  | OJmp   (** [dst] = target pc *)
  | OBr    (** operand A = condition, [dst]/[b] = then/else pc, [c] = site id *)
  | ORetN
  | ORetV
  | OBadLabel
      (** jump target that does not exist; executing it reproduces the
          reference engine's [Invalid_argument] from {!Ir.find_block} *)

(** {2 Operand kinds} — the [ak]/[bk]/[ck] fields of {!dinstr} *)

(** payload: register slot *)
val k_reg : int

(** payload: the int immediate itself *)
val k_int : int

(** payload: index into the program's float pool *)
val k_flt : int

(** payload: 0 or 1 *)
val k_bool : int

(** payload: global-array index *)
val k_glob : int

(** payload: frame-local array index *)
val k_loc : int

(** unknown global; payload: name-pool index *)
val k_gunk : int

(** unknown local; payload: name-pool index *)
val k_lunk : int

(** operand absent *)
val k_none : int

type dinstr = {
  op : op;
  dst : int;  (** destination register ([-1] = none), or branch target pc *)
  ak : int;
  a : int;    (** operand A (kind, payload); [OBadLabel]: the missing label *)
  bk : int;
  b : int;    (** operand B; [OBr]: else-target pc *)
  ck : int;
  c : int;    (** operand C ([OStore] value); [OBr]: branch site id *)
  args : int array;  (** [OCall]: interleaved (kind, payload) pairs *)
  callee : int;      (** [OCall]: function index, [-1] = unknown *)
  sname : string;    (** [OCall]: callee name (for trap messages) *)
  uses : int array;  (** registers read — filled for simple-issue ops *)
}

type dfunc = {
  fname : string;
  params : int array;
  nregs : int;
  code : dinstr array;
  entry_pc : int;
  locals : (string * Ir.elt * int) array;  (** frame arrays, decl order *)
}

type t = {
  funcs : dfunc array;     (** in [Ir.SMap] binding order *)
  main_idx : int;          (** index of [main], [-1] = absent *)
  main_name : string;
  globals : Ir.global array;  (** declaration order: fixes base addresses *)
  fpool : float array;     (** interned float constants *)
  names : string array;    (** interned unknown global/local names *)
  max_args : int;          (** widest static call, sizes the arg scratch *)
  nsites : int;            (** conditional-branch sites (predictor keys) *)
}

val decode : Ir.program -> t

(** static instruction slots (instructions + terminators), for stats *)
val code_size : t -> int

(** the global-array table {!run} executes against, with the same base
    addresses as the reference engine; exposed for [Mach.Flatsim] *)
val init_globals : t -> Interp.arr array

val arr_len : Interp.arr -> int
val dummy_arr : Interp.arr

(** {2 Runtime internals}

    Exposed so that [Mach.Flatsim] can write its own dispatch loop — with
    timing and counter accounting fused into every arm — over the same
    frames and operand accessors, instead of paying five closure hooks
    per instruction.  Everything here preserves the reference engine's
    trap messages and evaluation order exactly. *)

(** per-activation register file: [tags.(r)] is 0 undef / 1 int /
    2 float / 3 bool / 4 array, with the payload in the matching array
    ([ints] doubles as bool storage, 0/1) *)
type frame = {
  df : dfunc;
  tags : int array;
  ints : int array;
  flts : float array;
  arrs : Interp.arr array;
  mutable locals : Interp.arr array;  (** filled after params are bound *)
}

(** per-run mutable state.  [s_*] is a one-value scratch cell used for
    operands of any type (Mov/Print/Ret/Call argument and return);
    [arg_*] buffers call arguments between evaluation and binding. *)
type rt = {
  dp : t;
  garr : Interp.arr array;
  buf : Buffer.t;
  mutable fuel : int;
  mutable steps : int;
  mutable sp : int;
  mutable s_tag : int;
  mutable s_int : int;
  mutable s_flt : float;
  mutable s_arr : Interp.arr;
  arg_tags : int array;
  arg_ints : int array;
  arg_flts : float array;
  arg_arrs : Interp.arr array;
}

val make_rt : ?fuel:int -> t -> rt

(** raise {!Interp.Trap} with a formatted message *)
val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** allocate the register file for one activation ([locals] left empty) *)
val new_frame : t -> int -> frame

(** copy [n] buffered arguments into the frame's parameter registers *)
val bind_params : rt -> frame -> int -> unit

(** allocate frame arrays in declaration order, bumping [rt.sp] and
    trapping on stack overflow exactly like the reference engine *)
val alloc_locals : rt -> dfunc -> Interp.arr array

(** Operand accessors: [kind], [payload] from a {!dinstr} field pair.
    Trap like the reference — undefined-register and unknown-name traps
    fire before type-conversion traps. *)

val geti : rt -> frame -> int -> int -> int
val getf : rt -> frame -> int -> int -> float
val getb : rt -> frame -> int -> int -> bool
val geta : rt -> frame -> int -> int -> Interp.arr

(** the operand's dynamic tag, trapping on undef / unknown names
    ([Icmp]'s bool-vs-int dispatch needs the tag before any conversion) *)
val stag : rt -> frame -> int -> int -> int

(** bool payload when {!stag} already returned 3 *)
val getbp : frame -> int -> int -> bool

(** evaluate an operand of any type into the [s_*] scratch cell *)
val eval_any : rt -> frame -> int -> int -> unit

val set_int : frame -> int -> int -> unit
val set_flt : frame -> int -> float -> unit
val set_bool : frame -> int -> bool -> unit

(** write the scratch cell to a register (call returns, [Mov]) *)
val set_scratch : rt -> frame -> int -> unit

(** buffer the scratch cell as call argument [j] *)
val save_arg : rt -> int -> unit

(** scratch cell (holding main's return) + output + steps as a result *)
val result_of : rt -> Interp.result

val shift_ok : int -> bool

(** the [Icmp]/[Fcmp] arms (shared with the flat simulator); the int
    selects the comparison: 0 eq, 1 ne, 2 lt, 3 le, 4 gt, 5 ge *)
val do_icmp : rt -> frame -> dinstr -> int -> unit

val do_fcmp : rt -> frame -> dinstr -> int -> unit

(** Execute a decoded program (plain interpretation, no machine model).
    Bit-identical to {!Interp.run} with {!Interp.no_hooks}.
    @raise Interp.Trap on runtime errors
    @raise Interp.Out_of_fuel when the step budget is exhausted *)
val run : ?fuel:int -> t -> Interp.result

(** [decode] + [run] *)
val run_program : ?fuel:int -> Ir.program -> Interp.result

(** flat-engine {!Interp.observation} (same contract as {!Interp.observe}) *)
val observe : ?fuel:int -> Ir.program -> Interp.observation
