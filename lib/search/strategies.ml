(* Search strategies over the optimization-sequence space.  Every strategy
   consumes a cost oracle (lower = better; typically simulated cycles) and
   records the best-so-far cost after every evaluation, which is exactly the
   data Fig. 2(b) plots.  All strategies are deterministic given the seed. *)

module Pass = Passes.Pass

type eval = Pass.t list -> float

type result = {
  best_seq : Pass.t list;
  best_cost : float;
  evals : int;
  history : float array;   (* best-so-far cost after evaluation i *)
  seqs : Pass.t list array; (* the sequence tried at evaluation i *)
}

(* Observability: search progress.  Every candidate evaluation bumps
   search.evals; each improvement updates the search.best_cost gauge and
   emits a Chrome counter sample, so the best-so-far curve (Fig. 2(b))
   is visible live in the trace viewer. *)
let m_evals = Obs.Metrics.counter "search.evals"
let g_best = Obs.Metrics.gauge "search.best_cost"

let note_improvement c =
  Obs.Metrics.set g_best c;
  if Obs.Trace.enabled () then
    Obs.Trace.counter ~cat:"search" "search.best_cost" [ ("cost", c) ]

(* driver that tracks the running best *)
let run_budgeted ~(budget : int) ~(next : int -> Pass.t list) (eval : eval) :
    result =
  if budget <= 0 then invalid_arg "Strategies: budget must be positive";
  let go () =
    let history = Array.make budget infinity in
    let seqs = Array.make budget [] in
    let best_seq = ref [] and best_cost = ref infinity in
    for i = 0 to budget - 1 do
      let seq = next i in
      Obs.Metrics.incr m_evals;
      let c =
        if not (Obs.Trace.enabled ()) then eval seq
        else
          Obs.Trace.with_span ~cat:"search"
            ~args:[ ("seq", Obs.Trace.Str (Pass.sequence_to_string seq)) ]
            "search.eval"
            (fun () -> eval seq)
      in
      if c < !best_cost then begin
        best_cost := c;
        best_seq := seq;
        note_improvement c
      end;
      history.(i) <- !best_cost;
      seqs.(i) <- seq
    done;
    { best_seq = !best_seq; best_cost = !best_cost; evals = budget; history;
      seqs }
  in
  if not (Obs.Trace.enabled ()) then go ()
  else
    Obs.Trace.with_span ~cat:"search"
      ~args:[ ("budget", Obs.Trace.Int budget) ]
      "search.budgeted" go

(* Replay pre-computed costs into a [result]: the bridge to the batched
   evaluation engine.  [replay ~seqs ~costs] is exactly what a serial
   strategy produces when [eval seqs.(i) = costs.(i)], so a parallel
   cache-backed run is bit-identical to the serial closure path. *)
let replay ~(seqs : Pass.t list array) ~(costs : float array) : result =
  if Array.length seqs <> Array.length costs then
    invalid_arg "Strategies.replay: seqs/costs length mismatch";
  (* run_budgeted calls eval exactly once per index, in order *)
  let i = ref (-1) in
  run_budgeted ~budget:(Array.length seqs)
    ~next:(fun j -> seqs.(j))
    (fun _ ->
      incr i;
      costs.(!i))

(* the exact sequence list [random] evaluates, for batch evaluation *)
let random_plan ?(seed = 1) ?(length = Space.default_length) ~budget () :
    Pass.t list array =
  if budget <= 0 then invalid_arg "Strategies: budget must be positive";
  let rng = Random.State.make [| seed |] in
  Array.init budget (fun _ -> Space.random_seq rng ~length ())

(* uniform random search (the paper's RANDOM baseline) *)
let random ?(seed = 1) ?(length = Space.default_length) ~budget (eval : eval) :
    result =
  let plan = random_plan ~seed ~length ~budget () in
  run_budgeted ~budget ~next:(fun i -> plan.(i)) eval

(* random search averaged over [trials] seeds: returns the mean best-so-far
   curve (the paper averages 20 trials for statistical significance) *)
let random_averaged ?(seed = 1) ?(length = Space.default_length) ~budget
    ~trials (eval : eval) : float array =
  let acc = Array.make budget 0.0 in
  for t = 0 to trials - 1 do
    let r = random ~seed:(seed + (1000 * t)) ~length ~budget eval in
    Array.iteri (fun i c -> acc.(i) <- acc.(i) +. c) r.history
  done;
  Array.map (fun s -> s /. float_of_int trials) acc

(* first-improvement hill climbing with random restarts *)
let hill_climb ?(seed = 1) ?(length = Space.default_length) ~budget
    (eval : eval) : result =
  let rng = Random.State.make [| seed |] in
  let current = ref (Space.random_seq rng ~length ()) in
  let current_cost = ref infinity in
  let stall = ref 0 in
  run_budgeted ~budget
    ~next:(fun i ->
      if i = 0 then !current
      else if !stall > 3 * length then begin
        (* restart *)
        stall := 0;
        current := Space.random_seq rng ~length ();
        current_cost := infinity;
        !current
      end
      else Space.mutate rng !current)
    (fun seq ->
      let c = eval seq in
      if c < !current_cost then begin
        current_cost := c;
        current := seq;
        stall := 0
      end
      else incr stall;
      c)

(* exhaustive evaluation of an explicit list of sequences *)
let exhaustive (seqs : Pass.t list list) (eval : eval) : result =
  let arr = Array.of_list seqs in
  run_budgeted ~budget:(Array.length arr) ~next:(fun i -> arr.(i)) eval

(* [exhaustive] through a batch cost oracle (typically the engine's
   [costs]): the whole sweep lands in one batched call, so prefix
   sharing, simulation dedup and the worker pool see it at once, then
   the costs replay into the result a serial run produces *)
let exhaustive_batched (seqs : Pass.t list list)
    (costs : Pass.t list list -> float array) : result =
  replay ~seqs:(Array.of_list seqs) ~costs:(costs seqs)

(* ------------------------------------------------------------------ *)
(* Genetic algorithm (the Cooper et al. [33] baseline, used by the
   code-size experiment).  Tournament selection, one-point crossover,
   per-gene mutation, elitism of 1. *)

type ga_params = {
  population : int;
  generations : int;
  tournament : int;
  mutation_prob : float;
  crossover_prob : float;
}

let default_ga =
  {
    population = 20;
    generations = 10;
    tournament = 3;
    mutation_prob = 0.2;
    crossover_prob = 0.8;
  }

let genetic ?(seed = 1) ?(length = Space.default_length) ?(params = default_ga)
    (eval : eval) : result =
  let rng = Random.State.make [| seed |] in
  let memo : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let history = ref [] and tried = ref [] in
  let best_seq = ref [] and best_cost = ref infinity in
  let evals = ref 0 in
  let cost seq =
    let key = Pass.sequence_to_string seq in
    match Hashtbl.find_opt memo key with
    | Some c -> c
    | None ->
      let c =
        if not (Obs.Trace.enabled ()) then eval seq
        else
          Obs.Trace.with_span ~cat:"search"
            ~args:[ ("seq", Obs.Trace.Str key) ]
            "search.eval"
            (fun () -> eval seq)
      in
      incr evals;
      Obs.Metrics.incr m_evals;
      Hashtbl.replace memo key c;
      if c < !best_cost then begin
        best_cost := c;
        best_seq := seq;
        note_improvement c
      end;
      history := !best_cost :: !history;
      tried := seq :: !tried;
      c
  in
  let pop =
    ref (Array.init params.population (fun _ -> Space.random_seq rng ~length ()))
  in
  (* force evaluation of the initial population *)
  Array.iter (fun s -> ignore (cost s)) !pop;
  for _gen = 1 to params.generations do
    let select () =
      let best = ref (Space.random_seq rng ~length ()) in
      let bc = ref infinity in
      for _ = 1 to params.tournament do
        let cand = !pop.(Random.State.int rng params.population) in
        let c = cost cand in
        if c < !bc then begin
          bc := c;
          best := cand
        end
      done;
      !best
    in
    let next =
      Array.init params.population (fun i ->
          if i = 0 then !best_seq   (* elitism *)
          else begin
            let a = select () in
            let child =
              if Random.State.float rng 1.0 < params.crossover_prob then
                Space.crossover rng a (select ())
              else a
            in
            if Random.State.float rng 1.0 < params.mutation_prob then
              Space.mutate rng child
            else child
          end)
    in
    Array.iter (fun s -> ignore (cost s)) next;
    pop := next
  done;
  {
    best_seq = !best_seq;
    best_cost = !best_cost;
    evals = !evals;
    history = Array.of_list (List.rev !history);
    seqs = Array.of_list (List.rev !tried);
  }
