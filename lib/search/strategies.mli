(** Search strategies over the optimization-sequence space.  Each consumes
    a cost oracle (lower = better, typically simulated cycles) and records
    the best-so-far cost after every evaluation — the data Fig. 2(b)
    plots.  All strategies are deterministic given their seed. *)

type eval = Passes.Pass.t list -> float

type result = {
  best_seq : Passes.Pass.t list;
  best_cost : float;
  evals : int;
  history : float array;        (** best-so-far cost after evaluation i *)
  seqs : Passes.Pass.t list array;  (** sequence tried at evaluation i *)
}

(** driver: evaluate [next i] for i in [0, budget), tracking the best.
    @raise Invalid_argument if budget <= 0 *)
val run_budgeted :
  budget:int -> next:(int -> Passes.Pass.t list) -> eval -> result

(** Replay pre-computed costs into a [result] — the bridge to the batched
    evaluation engine: identical to running the serial strategy whose
    i-th evaluation is [seqs.(i)] with cost [costs.(i)].
    @raise Invalid_argument on length mismatch or empty input *)
val replay : seqs:Passes.Pass.t list array -> costs:float array -> result

(** The exact sequence list {!random} evaluates, for batch evaluation:
    [random ~seed ~length ~budget eval] ≡
    [replay ~seqs:(random_plan ~seed ~length ~budget ()) ~costs] when
    [costs.(i) = eval seqs.(i)].
    @raise Invalid_argument if budget <= 0 *)
val random_plan :
  ?seed:int -> ?length:int -> budget:int -> unit -> Passes.Pass.t list array

(** uniform random search (the paper's RANDOM baseline) *)
val random : ?seed:int -> ?length:int -> budget:int -> eval -> result

(** mean best-so-far curve of [trials] independent random searches (the
    paper averages 20 trials) *)
val random_averaged :
  ?seed:int -> ?length:int -> budget:int -> trials:int -> eval -> float array

(** first-improvement hill climbing with random restarts *)
val hill_climb : ?seed:int -> ?length:int -> budget:int -> eval -> result

(** evaluate an explicit list of sequences *)
val exhaustive : Passes.Pass.t list list -> eval -> result

(** {!exhaustive} through a batch cost oracle (typically the engine's
    [costs] applied to a program): the whole sweep is evaluated in one
    batched call — prefix sharing, simulation dedup and the worker pool
    see it at once — then replayed into the identical serial result.
    @raise Invalid_argument if [seqs] is empty *)
val exhaustive_batched :
  Passes.Pass.t list list ->
  (Passes.Pass.t list list -> float array) ->
  result

type ga_params = {
  population : int;
  generations : int;
  tournament : int;
  mutation_prob : float;
  crossover_prob : float;
}

val default_ga : ga_params

(** genetic algorithm (the Cooper et al. baseline): tournament selection,
    one-point crossover, per-gene mutation, elitism of one.  Evaluations
    are memoized; [result.evals] counts distinct sequences evaluated. *)
val genetic : ?seed:int -> ?length:int -> ?params:ga_params -> eval -> result
