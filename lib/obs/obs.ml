(* Mira.Obs — the unified observability layer: Clock (injectable time
   source), Trace (Chrome trace_event span tracer), Metrics (counter /
   gauge / histogram registry), and the one combined helper every
   instrumentation site uses.

   The design contract is pay-for-use: with tracing disabled and
   [Metrics.timing] off, [span] is two boolean loads and a closure call,
   so the hot paths (per-pass application, per-simulation) keep their
   benchmarked throughput.  See DESIGN.md "Observability". *)

module Clock = Clock
module Trace = Trace
module Metrics = Metrics
module Merge = Merge
module Rollup = Rollup

(* the field scanner for our machine-written JSON lines; exposed because
   the engine layer reads the same documents (manifest, rollup) back *)
module Jscan = Jscan

(* [span ~cat ?hist name f]: a trace span around [f] when tracing is
   enabled, and/or a duration sample (milliseconds) into [hist] when
   metric timing is on.  Exceptions propagate; the span still closes and
   the duration is still recorded. *)
let span ?cat ?hist name f =
  let timed = !Metrics.timing && hist <> None in
  if not (timed || Trace.enabled ()) then f ()
  else begin
    let t0 = if timed then Clock.now () else 0.0 in
    Trace.begin_span ?cat name;
    let record () =
      match hist with
      | Some h when timed ->
        Metrics.observe h ((Clock.now () -. t0) *. 1e3)
      | _ -> ()
    in
    match f () with
    | v ->
      Trace.end_span ();
      record ();
      v
    | exception e ->
      Trace.end_span ~args:[ ("error", Trace.Str (Printexc.to_string e)) ] ();
      record ();
      raise e
  end

(* variant for sites that want result-dependent args on the end event *)
let span_with ?cat ?hist name ~(end_args : 'a -> (string * Trace.arg) list)
    (f : unit -> 'a) : 'a =
  let timed = !Metrics.timing && hist <> None in
  if not (timed || Trace.enabled ()) then f ()
  else begin
    let t0 = if timed then Clock.now () else 0.0 in
    Trace.begin_span ?cat name;
    let record () =
      match hist with
      | Some h when timed ->
        Metrics.observe h ((Clock.now () -. t0) *. 1e3)
      | _ -> ()
    in
    match f () with
    | v ->
      Trace.end_span ~args:(end_args v) ();
      record ();
      v
    | exception e ->
      Trace.end_span ~args:[ ("error", Trace.Str (Printexc.to_string e)) ] ();
      record ();
      raise e
  end
