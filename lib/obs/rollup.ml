(* Run rollups.  See rollup.mli; the module is pure presentation: the
   caller (Engine.Dist's coordinator, or miracc sweep-status scanning a
   run directory cold) supplies the facts, this module merges the
   per-process metrics exports and renders one rollup.json document. *)

type shard = {
  shard : int;
  worker : string;
  chunks_total : int;
  chunks_done : int;
  torn : int;
  secs : float;
}

type input = {
  run : string;
  job : string;
  n : int;
  chunk_size : int;
  elapsed_s : float;
  workers_seen : int;
  shards_served : int;
  steals : int;
  requeues : int;
  worker_deaths : int;
  respawns : int;
  serial_fallbacks : int;
  absorbed : int;
  absorb_duplicates : int;
  absorb_rejected : int;
  shards : shard list;
  metrics_docs : string list;
}

let fnum v =
  if Float.is_nan v || Float.abs v = infinity then
    Printf.sprintf "\"%s\"" (string_of_float v)
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* the value of counter [name] in a (merged) metrics JSONL document *)
let counter_value jsonl name =
  String.split_on_char '\n' jsonl
  |> List.fold_left
       (fun acc line ->
         match acc with
         | Some _ -> acc
         | None ->
           if
             Jscan.str_field line "type" = Some "counter"
             && Jscan.str_field line "name" = Some name
           then
             match Jscan.num_field line "value" with
             | Some v -> Some (int_of_float v)
             | None -> None
           else None)
       None

let to_json (i : input) =
  let merged = Metrics.merge_jsonl i.metrics_docs in
  let cnt name = Option.value ~default:0 (counter_value merged name) in
  let cache_hits = cnt "engine.cache.hits" in
  let cache_misses = cnt "engine.cache.misses" in
  let dedup_hits = cnt "engine.dedup_hits" in
  let evals = cnt "engine.evals" in
  let rate num den = if den > 0 then float_of_int num /. float_of_int den else 0.0 in
  let total = List.fold_left (fun a s -> a + s.chunks_total) 0 i.shards in
  let done_ = List.fold_left (fun a s -> a + s.chunks_done) 0 i.shards in
  let torn = List.fold_left (fun a s -> a + s.torn) 0 i.shards in
  let b = Buffer.create 2048 in
  let add = Buffer.add_string b in
  add "{\n";
  add (Printf.sprintf "  \"schema\": \"icc-rollup/1\",\n");
  add (Printf.sprintf "  \"run\": %s,\n" (jstr i.run));
  add (Printf.sprintf "  \"job\": %s,\n" (jstr i.job));
  add (Printf.sprintf "  \"n\": %d,\n" i.n);
  add (Printf.sprintf "  \"chunk_size\": %d,\n" i.chunk_size);
  add (Printf.sprintf "  \"elapsed_s\": %s,\n" (fnum i.elapsed_s));
  add
    (Printf.sprintf "  \"chunks\": {\"total\": %d, \"done\": %d, \"torn\": %d},\n"
       total done_ torn);
  add
    (Printf.sprintf "  \"complete\": %b,\n" (total > 0 && done_ = total));
  add
    (Printf.sprintf
       "  \"coordinator\": {\"workers_seen\": %d, \"shards_served\": %d, \
        \"steals\": %d, \"requeues\": %d, \"worker_deaths\": %d, \
        \"respawns\": %d, \"serial_fallbacks\": %d, \"absorbed\": %d, \
        \"absorb_duplicates\": %d, \"absorb_rejected\": %d},\n"
       i.workers_seen i.shards_served i.steals i.requeues i.worker_deaths
       i.respawns i.serial_fallbacks i.absorbed i.absorb_duplicates
       i.absorb_rejected);
  add
    (Printf.sprintf
       "  \"cache\": {\"hits\": %d, \"misses\": %d, \"rate\": %s},\n"
       cache_hits cache_misses
       (fnum (rate cache_hits (cache_hits + cache_misses))));
  add
    (Printf.sprintf
       "  \"dedup\": {\"hits\": %d, \"evals\": %d, \"rate\": %s},\n" dedup_hits
       evals
       (fnum (rate dedup_hits evals)));
  add "  \"shards\": [";
  List.iteri
    (fun k (s : shard) ->
      if k > 0 then add ",";
      add "\n    ";
      let sps =
        if s.secs > 0.0 then
          float_of_int (s.chunks_done * i.chunk_size) /. s.secs
        else 0.0
      in
      add
        (Printf.sprintf
           "{\"shard\": %d, \"worker\": %s, \"chunks_total\": %d, \
            \"chunks_done\": %d, \"torn\": %d, \"secs\": %s, \
            \"throughput_sps\": %s}"
           s.shard (jstr s.worker) s.chunks_total s.chunks_done s.torn
           (fnum s.secs) (fnum sps)))
    i.shards;
  add "\n  ],\n";
  add "  \"metrics\": [";
  let lines =
    String.split_on_char '\n' merged
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  List.iteri
    (fun k l ->
      if k > 0 then add ",";
      add "\n    ";
      add l)
    lines;
  add "\n  ]\n";
  add "}\n";
  Buffer.contents b

let write ~path i =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json i));
  Sys.rename tmp path
