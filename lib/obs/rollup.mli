(** Run rollups: aggregate one distributed run's scattered telemetry —
    per-worker metrics exports, per-shard journal progress, coordinator
    orchestration counts — into a single [rollup.json] document
    (schema [icc-rollup/1]).

    This module is pure presentation over facts the caller supplies: the
    engine layer owns journal and manifest formats and feeds the numbers
    in, so the obs library stays dependency-free.  The coordinator writes
    the rollup incrementally while a run is live ({!write} is atomic via
    rename), and [miracc sweep-status] rebuilds the same document cold
    from the run directory. *)

type shard = {
  shard : int;
  worker : string;  (** completing / home worker name; [""] if unknown *)
  chunks_total : int;
  chunks_done : int;
  torn : int;  (** torn journal lines skipped while counting *)
  secs : float;  (** grant-to-finish wall seconds; [0.] if unknown *)
}

type input = {
  run : string;
  job : string;
  n : int;
  chunk_size : int;
  elapsed_s : float;
  workers_seen : int;
  shards_served : int;
  steals : int;
  requeues : int;
  worker_deaths : int;
  respawns : int;
  serial_fallbacks : int;
  absorbed : int;
  absorb_duplicates : int;
  absorb_rejected : int;
  shards : shard list;
  metrics_docs : string list;
      (** per-process {!Metrics.to_jsonl} exports, merged with
          {!Metrics.merge_jsonl} into the document's ["metrics"] array *)
}

(** render the rollup document.  Derived fields: total/done/torn chunk
    sums, ["complete"], per-shard throughput in sequences per second
    (when [secs] is known), and cache/dedup hit rates extracted from the
    merged metrics ([engine.cache.*], [engine.dedup_hits],
    [engine.evals]). *)
val to_json : input -> string

(** write the document to [path] atomically (temp file + rename), so a
    live reader never sees a half-written rollup *)
val write : path:string -> input -> unit
