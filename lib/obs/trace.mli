(** Span tracer: nested begin/end spans, instants and counter samples,
    exported in the Chrome [trace_event] JSON array format that
    [chrome://tracing] and Perfetto load directly.

    Disabled by default; every emit point is behind a single mutable-bool
    test, so instrumented code pays one load+branch when tracing is off.

    Two sinks:
    - {e memory}: a bounded ring buffer of events (oldest overwritten),
      exported on demand — what tests and [--profile] use;
    - {e stream}: events are appended to an [out_channel] and flushed as
      they happen, so a crash at any point leaves a loadable trace (the
      trace_event spec makes the closing ["]"] optional for exactly this
      reason).

    Cross-process forwarding: after [fork], a worker calls {!on_fork},
    which swaps in a private memory sink and records the worker pid;
    {!drain} hands the accumulated events back (they are plain values,
    marshallable over the pool's result pipe) and the parent replays
    them with {!emit_events}.  Timestamps stay comparable because the
    child inherits the parent's clock and epoch. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase = B | E | I | C

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float;  (** seconds since the trace epoch *)
  pid : int;
  args : (string * arg) list;
}

val enabled : unit -> bool

(** [enable_memory ()] starts tracing into a fresh ring buffer of
    [capacity] events (default 65536). *)
val enable_memory : ?capacity:int -> unit -> unit

(** [enable_stream oc] starts tracing; events stream to [oc], one JSON
    object per line, flushed per event.  Writes the opening ["["]. *)
val enable_stream : out_channel -> unit

(** stop tracing and drop all buffered state (the stream channel, if
    any, is not closed: the caller owns it) *)
val disable : unit -> unit

(** write the closing ["]"] on a stream sink (idempotent); memory sinks
    are unaffected.  Call before closing the trace file normally; a
    crash that skips it still leaves a valid trace. *)
val finish : unit -> unit

(** the pid stamped on subsequent events (default 0; callers set the
    real one since this library cannot ask the OS for it) *)
val set_pid : int -> unit

(** [set_run id] records the correlated run id for this process and, if
    tracing is enabled, emits a ["trace.run"] instant (cat ["meta"]) whose
    args carry the id and this process's trace epoch as absolute seconds
    (["epoch_s"]).  A run-level merger uses the shared id to confirm the
    files belong together and the epochs to rebase each file's relative
    timestamps onto one timeline. *)
val set_run : string -> unit

(** the run id recorded by {!set_run}, if any *)
val run_id : unit -> string option

val begin_span : ?cat:string -> ?args:(string * arg) list -> string -> unit

(** ends the innermost open span.  An [end_span] with no span open is
    dropped and counted in {!unbalanced_ends}. *)
val end_span : ?args:(string * arg) list -> unit -> unit

(** [with_span name f] wraps [f] in a span; the span is closed on
    exceptions too (with an ["error"] arg). *)
val with_span :
  ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit

(** a Chrome counter sample: a named time series of values *)
val counter : ?cat:string -> string -> (string * float) list -> unit

(** number of spans currently open (for tests) *)
val open_spans : unit -> int

(** end_span calls dropped because no span was open *)
val unbalanced_ends : unit -> int

(** events overwritten by the memory ring since enable *)
val dropped_events : unit -> int

(** worker side, after fork: swap in a private memory sink (so the child
    never writes the parent's stream) and stamp subsequent events with
    [pid] *)
val on_fork : pid:int -> unit

(** worker side, after fork, when the child should write its {e own}
    trace file rather than forward events: switch to a stream sink on
    [oc] (writing the opening ["["]), stamp subsequent events with [pid],
    and re-announce the run id if one is set.  Unlike {!enable_stream}
    the trace epoch is preserved, so the child's timestamps remain on the
    parent's timeline and a merged trace needs no rebasing. *)
val stream_after_fork : pid:int -> out_channel -> unit

(** take and clear the events accumulated since the last drain *)
val drain : unit -> event array

(** replay foreign events (a worker's drained batch) into this sink *)
val emit_events : event array -> unit

(** buffered events, oldest first (memory sink; empty for streams) *)
val events : unit -> event list

(** export the memory sink as a complete Chrome trace JSON document *)
val to_json : unit -> string

(** serialize one event as a JSON object (exposed for the checker test) *)
val event_to_json : event -> string
