(* Field scanner for our own machine-written JSON lines (metrics JSONL,
   trace event lines, manifest lines): fixed key order, no nesting
   beyond one array level, keys never appear inside string values we
   care about.  A full JSON parser would buy nothing here and this keeps
   the obs library dependency-free. *)

(* index just past ["key":] in [line], or None *)
let after_key line key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

(* string literal starting at [i] (which must hold the opening quote) *)
let str_at line i =
  let b = Buffer.create 16 in
  let n = String.length line in
  let rec go j =
    if j >= n then Buffer.contents b
    else
      match line.[j] with
      | '"' -> Buffer.contents b
      | '\\' when j + 1 < n ->
        (match line.[j + 1] with
         | 'n' -> Buffer.add_char b '\n'
         | c -> Buffer.add_char b c);
        go (j + 2)
      | c ->
        Buffer.add_char b c;
        go (j + 1)
  in
  go (i + 1)

let is_num_char = function
  | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
  | _ -> false

(* number at [i]; accepts the quoted form used for nan/inf.  Returns the
   value and the index just past it (for in-place rewriting). *)
let num_span line i =
  if i < String.length line && line.[i] = '"' then begin
    let s = str_at line i in
    (float_of_string s, i + String.length s + 2)
  end
  else begin
    let n = String.length line in
    let j = ref i in
    while !j < n && is_num_char line.[!j] do
      incr j
    done;
    (float_of_string (String.sub line i (!j - i)), !j)
  end

let num_at line i = fst (num_span line i)

(* pretty-printed documents (manifest, rollup) put a space after the
   colon; the convenience accessors tolerate it *)
let skip_ws line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && (line.[!j] = ' ' || line.[!j] = '\t') do
    incr j
  done;
  !j

(* convenience: the string value of [key], if present *)
let str_field line key =
  match after_key line key with
  | Some i ->
    let i = skip_ws line i in
    if i < String.length line && line.[i] = '"' then Some (str_at line i)
    else None
  | None -> None

(* convenience: the numeric value of [key], if present and parseable *)
let num_field line key =
  match after_key line key with
  | Some i -> (try Some (num_at line (skip_ws line i)) with _ -> None)
  | None -> None
