(* The one clock every Obs timestamp comes from.  Injectable so that (a)
   the library stays dependency-free — the application installs a real
   wall clock (miracc and bench install [Unix.gettimeofday] at startup)
   — and (b) tests install a deterministic fake and get byte-identical
   traces and metric tables.

   The default returns 0.0: with no clock installed every span has zero
   duration, which is harmless (tracing is opt-in and the entry points
   that enable it install a clock first). *)

let fn : (unit -> float) ref = ref (fun () -> 0.0)

let set f = fn := f
let now () = !fn ()

(* a fake clock for tests: starts at [start] (seconds) and advances by
   [step] on every reading *)
let fake ?(start = 0.0) ?(step = 0.001) () =
  let t = ref (start -. step) in
  fun () ->
    t := !t +. step;
    !t
