(* Span tracer.  See trace.mli for the model; the implementation notes
   that matter:

   - [enabled] is a plain bool ref tested by every emit helper, so the
     disabled cost at an instrumentation site is one load and branch.
   - The memory sink is a ring: a fixed event array plus a write cursor;
     once full, new events overwrite the oldest (counted in [dropped]).
   - The stream sink writes ",\n{event}" with the comma *before* every
     event but the first and flushes per event.  At any crash point the
     file therefore ends after a complete JSON object, which the Chrome
     trace_event format accepts (the closing "]" is optional by spec —
     that is the property the fault-injection test exercises).
   - Nesting is tracked as a stack of open span names so an unmatched
     end_span can be detected and dropped instead of corrupting the
     B/E pairing of everything above it. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase = B | E | I | C

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float;
  pid : int;
  args : (string * arg) list;
}

let dummy_event = { ph = I; name = ""; cat = ""; ts = 0.0; pid = 0; args = [] }

type ring = {
  buf : event array;
  mutable next : int;     (* total events ever written *)
  mutable dropped : int;  (* events overwritten *)
}

type sink = Off | Memory of ring | Stream of out_channel

let sink = ref Off
let on = ref false
let epoch = ref 0.0
let pid = ref 0
let stack : (string * string) list ref = ref [] (* (name, cat) of open spans *)
let bad_ends = ref 0
let streamed = ref 0 (* events written to the current stream sink *)
let run = ref None (* the correlated run id, once a coordinator minted one *)

let enabled () = !on
let set_pid p = pid := p
let run_id () = !run
let open_spans () = List.length !stack
let unbalanced_ends () = !bad_ends

let dropped_events () =
  match !sink with Memory r -> r.dropped | _ -> 0

let reset_side_state () =
  stack := [];
  bad_ends := 0;
  streamed := 0

let enable_memory ?(capacity = 65536) () =
  let capacity = max 16 capacity in
  sink := Memory { buf = Array.make capacity dummy_event; next = 0; dropped = 0 };
  epoch := Clock.now ();
  reset_side_state ();
  on := true

let enable_stream oc =
  output_string oc "[\n";
  flush oc;
  sink := Stream oc;
  epoch := Clock.now ();
  reset_side_state ();
  on := true

let disable () =
  on := false;
  sink := Off;
  reset_side_state ()

(* ------------------------------------------------------------------ *)
(* JSON *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let buf_float b v =
  if Float.is_nan v || Float.abs v = infinity then begin
    (* JSON has no inf/nan literals; stringify so the document stays valid *)
    Buffer.add_char b '"';
    Buffer.add_string b (string_of_float v);
    Buffer.add_char b '"'
  end
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else Buffer.add_string b (Printf.sprintf "%.6g" v)

let buf_arg b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> buf_float b f
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Str s ->
    Buffer.add_char b '"';
    buf_escape b s;
    Buffer.add_char b '"'

let phase_letter = function B -> "B" | E -> "E" | I -> "i" | C -> "C"

let event_to_json (e : event) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"name\":\"";
  buf_escape b e.name;
  Buffer.add_string b "\",\"cat\":\"";
  buf_escape b (if e.cat = "" then "mira" else e.cat);
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b (phase_letter e.ph);
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (Printf.sprintf "%.3f" (e.ts *. 1e6));
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int e.pid);
  Buffer.add_string b ",\"tid\":0";
  (match e.args with
   | [] -> ()
   | args ->
     Buffer.add_string b ",\"args\":{";
     List.iteri
       (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_char b '"';
         buf_escape b k;
         Buffer.add_string b "\":";
         buf_arg b v)
       args;
     Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* emitting *)

let push (e : event) =
  match !sink with
  | Off -> ()
  | Memory r ->
    let cap = Array.length r.buf in
    if r.next >= cap then r.dropped <- r.dropped + 1;
    r.buf.(r.next mod cap) <- e;
    r.next <- r.next + 1
  | Stream oc ->
    if !streamed > 0 then output_string oc ",\n";
    output_string oc (event_to_json e);
    incr streamed;
    flush oc

let now_rel () = Clock.now () -. !epoch

let mk ?(cat = "") ?(args = []) ph name =
  { ph; name; cat; ts = now_rel (); pid = !pid; args }

let begin_span ?(cat = "") ?args name =
  if !on then begin
    stack := (name, cat) :: !stack;
    push (mk ~cat ?args B name)
  end

(* the end event inherits the begin's name and category, so B/E pairs
   stay matched and a category tally sees spans once, not twice *)
let end_span ?(args = []) () =
  if !on then
    match !stack with
    | [] -> incr bad_ends
    | (name, cat) :: rest ->
      stack := rest;
      push (mk ~cat ~args E name)

let with_span ?cat ?args name f =
  if not !on then f ()
  else begin
    begin_span ?cat ?args name;
    match f () with
    | v ->
      end_span ();
      v
    | exception e ->
      end_span ~args:[ ("error", Str (Printexc.to_string e)) ] ();
      raise e
  end

let instant ?cat ?args name = if !on then push (mk ?cat ?args I name)

let counter ?cat name series =
  if !on then
    push (mk ?cat ~args:(List.map (fun (k, v) -> (k, Float v)) series) C name)

(* the trace.run instant is the correlation anchor: every process of a
   distributed run emits one into its own trace file, carrying the
   shared run id plus this process's trace epoch (absolute clock time),
   so a merger can both verify the files belong together and rebase
   their relative timestamps onto one timeline *)
let announce_run () =
  match !run with
  | Some id when !on ->
    push
      (mk ~cat:"meta"
         ~args:[ ("id", Str id); ("epoch_s", Float !epoch) ]
         I "trace.run")
  | _ -> ()

let set_run id =
  run := Some id;
  announce_run ()

(* ------------------------------------------------------------------ *)
(* memory-sink access, draining, forwarding *)

let events () =
  match !sink with
  | Memory r ->
    let cap = Array.length r.buf in
    let n = min r.next cap in
    let first = r.next - n in
    List.init n (fun i -> r.buf.((first + i) mod cap))
  | _ -> []

let drain () =
  let evs = Array.of_list (events ()) in
  (match !sink with
   | Memory r ->
     r.next <- 0;
     r.dropped <- 0
   | _ -> ());
  evs

let emit_events evs = if !on then Array.iter push evs

let on_fork ~pid:p =
  if !on then begin
    (* a private ring: the inherited stream channel belongs to the
       parent, and the inherited buffer contents are the parent's too *)
    sink := Memory { buf = Array.make 16384 dummy_event; next = 0; dropped = 0 };
    reset_side_state ();
    pid := p
  end

let stream_after_fork ~pid:p oc =
  if !on then begin
    output_string oc "[\n";
    flush oc;
    sink := Stream oc;
    reset_side_state ();
    pid := p;
    (* deliberately NOT resetting [epoch]: the child keeps the parent's
       time origin so its timestamps stay directly comparable in a
       merged run-level trace *)
    announce_run ()
  end

(* ------------------------------------------------------------------ *)
(* export *)

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (event_to_json e))
    (events ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let finish () =
  match !sink with
  | Stream oc ->
    output_string oc "\n]\n";
    flush oc;
    (* the terminator is written once; further events would corrupt the
       document, so tracing ends here *)
    on := false;
    sink := Off
  | _ -> ()
