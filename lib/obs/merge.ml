(* Run-level trace merging.  See merge.mli; implementation notes:

   - Each input is a file our own stream sink wrote: "[\n" then one JSON
     event object per line (trailing comma on all but the last), with an
     optional "\n]\n" terminator.  A process killed mid-write leaves a
     torn final line; anything that does not read as a complete object
     on one line is counted in [skipped] and dropped — merging a crashed
     run is the point, not an error.
   - Correlation and rebasing both hang off the "trace.run" instant each
     process emits ({!Trace.set_run}): its ["id"] arg is the shared run
     id, its ["epoch_s"] arg is that process's trace epoch in absolute
     seconds.  Event timestamps are relative microseconds, so shifting a
     file by (epoch - min epoch) * 1e6 puts every process on one
     timeline.  Files forked from the coordinator share its epoch
     ({!Trace.stream_after_fork}) and shift by zero.
   - Output ordering: Chrome trace_event metadata ("M") events naming
     each process first, then all events sorted by rebased timestamp
     (stable within a file, so B/E nesting per pid survives). *)

type stats = {
  run : string option;
  files : int;
  events : int;
  skipped : int;
  mismatched : string list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type source = {
  label : string;
  mutable epoch : float option;
  mutable sid : string option; (* run id announced in this file *)
  mutable first_pid : int option;
  mutable evs : (float * string) list; (* (ts_us, line) in file order, reversed *)
  mutable torn : int;
}

(* one event line: strip the separator comma, demand a complete object *)
let event_of_line line =
  let line = String.trim line in
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = ',' then String.sub line 0 (n - 1) else line
  in
  let n = String.length line in
  if n = 0 || line = "[" || line = "]" then None
  else if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then Some (Error ())
  else Some (Ok line)

let scan_source label text =
  let s =
    { label; epoch = None; sid = None; first_pid = None; evs = []; torn = 0 }
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         match event_of_line raw with
         | None -> ()
         | Some (Error ()) -> s.torn <- s.torn + 1
         | Some (Ok line) -> (
           match Jscan.num_field line "ts" with
           | None -> s.torn <- s.torn + 1
           | Some ts ->
             (if s.first_pid = None then
                match Jscan.num_field line "pid" with
                | Some p -> s.first_pid <- Some (int_of_float p)
                | None -> ());
             (match Jscan.str_field line "name" with
              | Some "trace.run" ->
                (* the args come after the fixed header fields, so the
                   scanner finds "id"/"epoch_s" without parsing args.
                   The LAST announce wins: a forked child re-announces
                   whatever id it inherited, then the coordinator's
                   hello reply installs the authoritative one *)
                (match Jscan.str_field line "id" with
                 | Some _ as id -> s.sid <- id
                 | None -> ());
                (match Jscan.num_field line "epoch_s" with
                 | Some _ as e -> s.epoch <- e
                 | None -> ())
              | _ -> ());
             s.evs <- (ts, line) :: s.evs));
  s.evs <- List.rev s.evs;
  s

(* rewrite the ts field of an event line to [ts] (already in µs) *)
let with_ts line ts =
  match Jscan.after_key line "ts" with
  | None -> line
  | Some i ->
    let j = ref i in
    let n = String.length line in
    while !j < n && Jscan.is_num_char line.[!j] do
      incr j
    done;
    String.sub line 0 i
    ^ Printf.sprintf "%.3f" ts
    ^ String.sub line !j (n - !j)

let meta_event ~pid ~name ~args_json =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"meta\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\
     \"tid\":0,\"args\":{%s}}"
    name pid args_json

let merge_files sources out =
  let parsed =
    List.filter_map
      (fun (label, path) ->
        match read_file path with
        | text -> Some (scan_source label text)
        | exception _ -> None)
      sources
  in
  let epochs = List.filter_map (fun s -> s.epoch) parsed in
  let epoch0 = List.fold_left Float.min infinity epochs in
  let offset s =
    match s.epoch with
    | Some e when epoch0 <> infinity -> (e -. epoch0) *. 1e6
    | _ -> 0.0
  in
  (* run-id agreement: the first announced id is the candidate; files
     announcing a different id (or none) are reported, and a genuine
     conflict voids the merged id *)
  let candidate =
    List.fold_left
      (fun acc s -> match acc with None -> s.sid | some -> some)
      None parsed
  in
  let mismatched =
    List.filter_map
      (fun s -> if s.sid <> candidate then Some s.label else None)
      parsed
  in
  let conflict =
    List.exists (fun s -> s.sid <> None && s.sid <> candidate) parsed
  in
  let run = if conflict then None else candidate in
  (* collect rebased events; the sort key includes source and file order
     so equal timestamps keep their within-process order (B/E nesting) *)
  let all = ref [] in
  List.iteri
    (fun si s ->
      let off = offset s in
      List.iteri
        (fun li (ts, line) ->
          let ts' = ts +. off in
          all := (ts', si, li, with_ts line ts') :: !all)
        s.evs)
    parsed;
  let arr = Array.of_list !all in
  Array.sort
    (fun (a, sa, la, _) (b, sb, lb, _) ->
      let c = compare a b in
      if c <> 0 then c
      else
        let c = compare sa sb in
        if c <> 0 then c else compare la lb)
    arr;
  output_string out "[\n";
  let emitted = ref 0 in
  let emit line =
    if !emitted > 0 then output_string out ",\n";
    output_string out line;
    incr emitted
  in
  List.iteri
    (fun si s ->
      match s.first_pid with
      | None -> ()
      | Some pid ->
        emit
          (meta_event ~pid ~name:"process_name"
             ~args_json:(Printf.sprintf "\"name\":\"%s\"" s.label));
        emit
          (meta_event ~pid ~name:"process_sort_index"
             ~args_json:(Printf.sprintf "\"sort_index\":%d" si)))
    parsed;
  Array.iter (fun (_, _, _, line) -> emit line) arr;
  output_string out "\n]\n";
  flush out;
  {
    run;
    files = List.length parsed;
    events = !emitted;
    skipped = List.fold_left (fun a s -> a + s.torn) 0 parsed;
    mismatched;
  }
