(** Metrics registry: named counters, gauges and log-scale histograms.

    Handles are obtained once (typically at module init) with
    {!counter}/{!gauge}/{!histogram} — get-or-create on a process-global
    registry — and updated with O(1) arithmetic, so instrumentation
    sites stay cheap enough to leave on permanently.  Naming convention
    (enforced socially, documented in DESIGN.md): [subsystem.event],
    with a [_ms] / [_bytes] suffix naming the unit of histograms.

    Histograms bucket values on a base-2 log scale from 1e-6 up (64
    buckets plus under/overflow), tracking count/sum/min/max exactly;
    quantiles are linearly interpolated inside the hit bucket, so a
    reported quantile is within one bucket ratio (2x) of the truth.

    Export: a human table ({!pp_table}) and JSONL, one metric per line
    ({!to_jsonl}). *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge

(** [histogram ~unit_ name]: [unit_] is a label for export only
    (default ["ms"]) *)
val histogram : ?unit_:string -> string -> histogram

(** registering a name twice with different kinds raises
    [Invalid_argument]; same kind returns the existing handle *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** timing side of the {!Obs.span} helper: when false (the default),
    spans skip the clock reads and histogram updates entirely *)
val timing : bool ref

val value : counter -> int
val gauge_value : gauge -> float
val hist_count : histogram -> int
val hist_sum : histogram -> float

(** [quantile h q] for q in [0,1]; [nan] on an empty histogram *)
val quantile : histogram -> float -> float

(** the same quantile math over raw components ([counts] of length
    [n_buckets + 2]); lets merged bucket arrays be queried without a
    registered handle *)
val quantile_of :
  counts:int array -> n:int -> mn:float -> mx:float -> float -> float

(** bucket index of a value (0 = underflow, 65 = overflow); exposed for
    the unit tests of the bucket math *)
val bucket_of_value : float -> int

val n_buckets : int

(** all metrics with a non-default value, sorted by name, rendered as
    one string per metric value (the table's right column) *)
val snapshot : unit -> (string * string) list

(** the human table; prints "metrics (none recorded)" when empty *)
val pp_table : Format.formatter -> unit -> unit

val to_jsonl : unit -> string

(** [merge_jsonl docs] merges several processes' {!to_jsonl} exports into
    one JSONL document (sorted by name): counters add, gauges keep the
    max (they are levels — queue depth, workers alive — so summing would
    double-count), histograms merge their bucket arrays pointwise with
    count/sum/min/max combined exactly and quantiles recomputed from the
    merged buckets.  The merged quantiles obey the same 2× bucket-ratio
    bound as a single registry observing the concatenated samples.
    Unparseable lines are skipped.  The registry is not touched. *)
val merge_jsonl : string list -> string

(** zero every registered metric, keeping handles valid (tests) *)
val reset : unit -> unit
