(** Run-level trace merging: stitch the per-process Chrome trace files of
    one distributed run into a single loadable trace.

    Every process of a run announces the shared run id and its own trace
    epoch in a ["trace.run"] instant ({!Trace.set_run}); the merger uses
    the ids to confirm the files belong together and the epochs to rebase
    each file's relative timestamps onto the earliest process's timeline.
    The merged document opens with trace_event metadata (["M"]) events
    naming each process (its source label) and ordering them in source
    order, so a viewer shows the coordinator's row above its workers with
    every span on one clock.

    Torn trailing lines — a worker killed mid-write — are skipped and
    counted, never fatal: merging crashed runs is a primary use case. *)

type stats = {
  run : string option;
      (** the shared run id, when every file that announced one agreed;
          [None] when ids conflict or none were announced *)
  files : int;  (** input files read (unreadable paths are dropped) *)
  events : int;  (** events written, metadata included *)
  skipped : int;  (** torn or unparseable lines dropped *)
  mismatched : string list;
      (** labels of files whose run id was missing or disagreed with the
          first announced id *)
}

(** [merge_files sources out] reads each [(label, path)] trace file,
    rebases and interleaves their events, and writes one Chrome
    trace_event JSON array to [out].  Sources should be listed
    coordinator first: the metadata sort index follows list order. *)
val merge_files : (string * string) list -> out_channel -> stats
