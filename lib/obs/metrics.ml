(* Metrics registry.  See metrics.mli; notes:

   - The registry is a process-global name -> metric table.  Handles are
     records the call sites keep; [reset] zeroes values in place so
     handles obtained at module init survive (the tests depend on it).
   - Histogram buckets: index 0 is the underflow bucket (v < 1e-6),
     indices 1..64 cover [lo*2^(i-1), lo*2^i), index 65 is overflow.
     Count, sum, min and max are tracked exactly; only the quantiles
     are bucket-approximate. *)

type counter = { cname : string; mutable c : int }
type gauge = { gname : string; mutable g : float; mutable gtouched : bool }

let n_buckets = 64
let lo_bound = 1e-6

type histogram = {
  hname : string;
  hunit : string;
  counts : int array; (* n_buckets + 2 *)
  mutable sum : float;
  mutable n : int;
  mutable mn : float;
  mutable mx : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let timing = ref false

let register name build describe =
  match Hashtbl.find_opt registry name with
  | None ->
    let m = build () in
    Hashtbl.replace registry name m;
    m
  | Some m -> (
    match describe m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered with another kind"
           name))

let counter name =
  match
    register name
      (fun () -> C { cname = name; c = 0 })
      (function C c -> Some (C c) | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let gauge name =
  match
    register name
      (fun () -> G { gname = name; g = 0.0; gtouched = false })
      (function G g -> Some (G g) | _ -> None)
  with
  | G g -> g
  | _ -> assert false

let histogram ?(unit_ = "ms") name =
  match
    register name
      (fun () ->
        H
          {
            hname = name;
            hunit = unit_;
            counts = Array.make (n_buckets + 2) 0;
            sum = 0.0;
            n = 0;
            mn = infinity;
            mx = neg_infinity;
          })
      (function H h -> Some (H h) | _ -> None)
  with
  | H h -> h
  | _ -> assert false

let incr ?(by = 1) c = c.c <- c.c + by

let set g v =
  g.g <- v;
  g.gtouched <- true

let bucket_of_value v =
  if Float.is_nan v || v < lo_bound then 0
  else
    let i = 1 + int_of_float (Float.log2 (v /. lo_bound)) in
    if i < 1 then 1 else if i > n_buckets then n_buckets + 1 else i

let observe h v =
  h.counts.(bucket_of_value v) <- h.counts.(bucket_of_value v) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v

let value c = c.c
let gauge_value g = g.g
let hist_count h = h.n
let hist_sum h = h.sum

let bucket_lower i = if i <= 1 then 0.0 else lo_bound *. Float.pow 2.0 (float_of_int (i - 1))
let bucket_upper i =
  if i = 0 then lo_bound
  else lo_bound *. Float.pow 2.0 (float_of_int i)

(* the quantile math over raw components, so merged bucket arrays (from
   several processes' exports) can be queried without a live handle *)
let quantile_of ~counts ~n ~mn ~mx q =
  if n = 0 then nan
  else if q <= 0.0 then mn
  else if q >= 1.0 then mx
  else begin
    let rank = q *. float_of_int n in
    let i = ref 0 and cum = ref 0.0 in
    while !cum +. float_of_int counts.(!i) < rank && !i < n_buckets + 1 do
      cum := !cum +. float_of_int counts.(!i);
      i := !i + 1
    done;
    let in_bucket = float_of_int counts.(!i) in
    let lower = Float.max mn (bucket_lower !i) in
    let upper =
      if !i = n_buckets + 1 then mx else Float.min mx (bucket_upper !i)
    in
    if in_bucket <= 0.0 then Float.min upper mx
    else
      let frac = (rank -. !cum) /. in_bucket in
      Float.max mn (Float.min mx (lower +. ((upper -. lower) *. frac)))
  end

let quantile h q = quantile_of ~counts:h.counts ~n:h.n ~mn:h.mn ~mx:h.mx q

(* ------------------------------------------------------------------ *)
(* export *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let hist_cell h =
  Printf.sprintf "n=%d sum=%s min=%s p50=%s p90=%s p99=%s max=%s %s" h.n
    (fnum h.sum) (fnum h.mn)
    (fnum (quantile h 0.5))
    (fnum (quantile h 0.9))
    (fnum (quantile h 0.99))
    (fnum h.mx) h.hunit

let interesting = function
  | C c -> c.c <> 0
  | G g -> g.gtouched
  | H h -> h.n > 0

let cell = function
  | C c -> string_of_int c.c
  | G g -> fnum g.g
  | H h -> hist_cell h

let snapshot () =
  Hashtbl.fold
    (fun name m acc -> if interesting m then (name, cell m) :: acc else acc)
    registry []
  |> List.sort compare

let pp_table ppf () =
  match snapshot () with
  | [] -> Format.fprintf ppf "metrics (none recorded)@."
  | rows ->
    let w =
      List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows
    in
    Format.fprintf ppf "metrics@.";
    List.iter
      (fun (n, v) -> Format.fprintf ppf "  %-*s  %s@." w n v)
      rows

let jescape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jfloat v =
  if Float.is_nan v || Float.abs v = infinity then
    Printf.sprintf "\"%s\"" (string_of_float v)
  else fnum v

(* sparse: only non-empty buckets, as [index,count] pairs — the typical
   histogram hits a handful of its 66 buckets *)
let buckets_json counts =
  let b = Buffer.create 64 in
  Buffer.add_char b '[';
  let first = ref true in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b (Printf.sprintf "[%d,%d]" i n)
      end)
    counts;
  Buffer.add_char b ']';
  Buffer.contents b

let metric_to_json = function
  | C c ->
    Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}"
      (jescape c.cname) c.c
  | G g ->
    Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}"
      (jescape g.gname) (jfloat g.g)
  | H h ->
    Printf.sprintf
      "{\"type\":\"histogram\",\"name\":\"%s\",\"unit\":\"%s\",\"count\":%d,\
       \"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\
       \"buckets\":%s}"
      (jescape h.hname) (jescape h.hunit) h.n (jfloat h.sum) (jfloat h.mn)
      (jfloat h.mx)
      (jfloat (quantile h 0.5))
      (jfloat (quantile h 0.9))
      (jfloat (quantile h 0.99))
      (buckets_json h.counts)

let to_jsonl () =
  let rows =
    Hashtbl.fold
      (fun name m acc ->
        if interesting m then (name, metric_to_json m) :: acc else acc)
      registry []
    |> List.sort compare
  in
  String.concat "" (List.map (fun (_, j) -> j ^ "\n") rows)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c <- 0
      | G g ->
        g.g <- 0.0;
        g.gtouched <- false
      | H h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.0;
        h.n <- 0;
        h.mn <- infinity;
        h.mx <- neg_infinity)
    registry

(* ------------------------------------------------------------------ *)
(* merging exports from several processes

   The input is our own machine-written JSONL (one object per line,
   fixed key order, no nesting except the buckets array), so the Jscan
   field scanner is enough — no JSON library needed, which keeps this
   module dependency-free. *)

let after_key = Jscan.after_key
let str_at = Jscan.str_at
let num_at = Jscan.num_at

(* sparse bucket array [[i,n],...] starting at [i] (the opening '[') *)
let buckets_at line i =
  let counts = Array.make (n_buckets + 2) 0 in
  let n = String.length line in
  let j = ref (i + 1) in
  let depth = ref 1 in
  let nums = ref [] in
  while !depth > 0 && !j < n do
    match line.[!j] with
    | '[' ->
      Stdlib.incr depth;
      Stdlib.incr j
    | ']' ->
      Stdlib.decr depth;
      Stdlib.incr j
    | '0' .. '9' ->
      let k = ref !j in
      while
        !k < n && match line.[!k] with '0' .. '9' -> true | _ -> false
      do
        Stdlib.incr k
      done;
      nums := int_of_string (String.sub line !j (!k - !j)) :: !nums;
      j := !k
    | _ -> Stdlib.incr j
  done;
  (* [nums] is reversed, so pairs arrive count-first *)
  let rec fill = function
    | cnt :: idx :: rest ->
      if idx >= 0 && idx < Array.length counts then
        counts.(idx) <- counts.(idx) + cnt;
      fill rest
    | _ -> ()
  in
  fill !nums;
  counts

let merge_line tbl line =
  match (after_key line "type", after_key line "name") with
  | Some ti, Some ni -> (
    let ty = str_at line ti and name = str_at line ni in
    let num key default =
      match after_key line key with Some i -> num_at line i | None -> default
    in
    match ty with
    | "counter" -> (
      let v = int_of_float (num "value" 0.0) in
      match Hashtbl.find_opt tbl name with
      | Some (C c) -> c.c <- c.c + v
      | Some _ -> ()
      | None -> Hashtbl.replace tbl name (C { cname = name; c = v }))
    | "gauge" -> (
      (* gauges are levels (queue depth, workers alive): across
         processes the max is the honest summary; summing would
         double-count *)
      let v = num "value" 0.0 in
      match Hashtbl.find_opt tbl name with
      | Some (G g) -> if v > g.g then g.g <- v
      | Some _ -> ()
      | None ->
        Hashtbl.replace tbl name (G { gname = name; g = v; gtouched = true }))
    | "histogram" -> (
      let unit_ =
        match after_key line "unit" with Some i -> str_at line i | None -> "ms"
      in
      let cnt = int_of_float (num "count" 0.0) in
      let sum = num "sum" 0.0 in
      let mn = num "min" infinity in
      let mx = num "max" neg_infinity in
      let counts =
        match after_key line "buckets" with
        | Some i -> buckets_at line i
        | None -> Array.make (n_buckets + 2) 0
      in
      match Hashtbl.find_opt tbl name with
      | Some (H h) ->
        Array.iteri (fun i c -> h.counts.(i) <- h.counts.(i) + c) counts;
        h.sum <- h.sum +. sum;
        h.n <- h.n + cnt;
        if mn < h.mn then h.mn <- mn;
        if mx > h.mx then h.mx <- mx
      | Some _ -> ()
      | None ->
        Hashtbl.replace tbl name
          (H { hname = name; hunit = unit_; counts; sum; n = cnt; mn; mx }))
    | _ -> ())
  | _ -> ()

let merge_jsonl docs =
  let tbl : (string, metric) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun doc ->
      String.split_on_char '\n' doc
      |> List.iter (fun line ->
             let line = String.trim line in
             if line <> "" then try merge_line tbl line with _ -> ()))
    docs;
  Hashtbl.fold
    (fun name m acc ->
      if interesting m then (name, metric_to_json m) :: acc else acc)
    tbl []
  |> List.sort compare
  |> List.map (fun (_, j) -> j ^ "\n")
  |> String.concat ""
