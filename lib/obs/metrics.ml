(* Metrics registry.  See metrics.mli; notes:

   - The registry is a process-global name -> metric table.  Handles are
     records the call sites keep; [reset] zeroes values in place so
     handles obtained at module init survive (the tests depend on it).
   - Histogram buckets: index 0 is the underflow bucket (v < 1e-6),
     indices 1..64 cover [lo*2^(i-1), lo*2^i), index 65 is overflow.
     Count, sum, min and max are tracked exactly; only the quantiles
     are bucket-approximate. *)

type counter = { cname : string; mutable c : int }
type gauge = { gname : string; mutable g : float; mutable gtouched : bool }

let n_buckets = 64
let lo_bound = 1e-6

type histogram = {
  hname : string;
  hunit : string;
  counts : int array; (* n_buckets + 2 *)
  mutable sum : float;
  mutable n : int;
  mutable mn : float;
  mutable mx : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let timing = ref false

let register name build describe =
  match Hashtbl.find_opt registry name with
  | None ->
    let m = build () in
    Hashtbl.replace registry name m;
    m
  | Some m -> (
    match describe m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered with another kind"
           name))

let counter name =
  match
    register name
      (fun () -> C { cname = name; c = 0 })
      (function C c -> Some (C c) | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let gauge name =
  match
    register name
      (fun () -> G { gname = name; g = 0.0; gtouched = false })
      (function G g -> Some (G g) | _ -> None)
  with
  | G g -> g
  | _ -> assert false

let histogram ?(unit_ = "ms") name =
  match
    register name
      (fun () ->
        H
          {
            hname = name;
            hunit = unit_;
            counts = Array.make (n_buckets + 2) 0;
            sum = 0.0;
            n = 0;
            mn = infinity;
            mx = neg_infinity;
          })
      (function H h -> Some (H h) | _ -> None)
  with
  | H h -> h
  | _ -> assert false

let incr ?(by = 1) c = c.c <- c.c + by

let set g v =
  g.g <- v;
  g.gtouched <- true

let bucket_of_value v =
  if Float.is_nan v || v < lo_bound then 0
  else
    let i = 1 + int_of_float (Float.log2 (v /. lo_bound)) in
    if i < 1 then 1 else if i > n_buckets then n_buckets + 1 else i

let observe h v =
  h.counts.(bucket_of_value v) <- h.counts.(bucket_of_value v) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v

let value c = c.c
let gauge_value g = g.g
let hist_count h = h.n
let hist_sum h = h.sum

let bucket_lower i = if i <= 1 then 0.0 else lo_bound *. Float.pow 2.0 (float_of_int (i - 1))
let bucket_upper i =
  if i = 0 then lo_bound
  else lo_bound *. Float.pow 2.0 (float_of_int i)

let quantile h q =
  if h.n = 0 then nan
  else if q <= 0.0 then h.mn
  else if q >= 1.0 then h.mx
  else begin
    let rank = q *. float_of_int h.n in
    let i = ref 0 and cum = ref 0.0 in
    while !cum +. float_of_int h.counts.(!i) < rank && !i < n_buckets + 1 do
      cum := !cum +. float_of_int h.counts.(!i);
      i := !i + 1
    done;
    let in_bucket = float_of_int h.counts.(!i) in
    let lower = Float.max h.mn (bucket_lower !i) in
    let upper =
      if !i = n_buckets + 1 then h.mx else Float.min h.mx (bucket_upper !i)
    in
    if in_bucket <= 0.0 then Float.min upper h.mx
    else
      let frac = (rank -. !cum) /. in_bucket in
      Float.max h.mn (Float.min h.mx (lower +. ((upper -. lower) *. frac)))
  end

(* ------------------------------------------------------------------ *)
(* export *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let hist_cell h =
  Printf.sprintf "n=%d sum=%s min=%s p50=%s p90=%s p99=%s max=%s %s" h.n
    (fnum h.sum) (fnum h.mn)
    (fnum (quantile h 0.5))
    (fnum (quantile h 0.9))
    (fnum (quantile h 0.99))
    (fnum h.mx) h.hunit

let interesting = function
  | C c -> c.c <> 0
  | G g -> g.gtouched
  | H h -> h.n > 0

let cell = function
  | C c -> string_of_int c.c
  | G g -> fnum g.g
  | H h -> hist_cell h

let snapshot () =
  Hashtbl.fold
    (fun name m acc -> if interesting m then (name, cell m) :: acc else acc)
    registry []
  |> List.sort compare

let pp_table ppf () =
  match snapshot () with
  | [] -> Format.fprintf ppf "metrics (none recorded)@."
  | rows ->
    let w =
      List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows
    in
    Format.fprintf ppf "metrics@.";
    List.iter
      (fun (n, v) -> Format.fprintf ppf "  %-*s  %s@." w n v)
      rows

let jescape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jfloat v =
  if Float.is_nan v || Float.abs v = infinity then
    Printf.sprintf "\"%s\"" (string_of_float v)
  else fnum v

let metric_to_json = function
  | C c ->
    Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}"
      (jescape c.cname) c.c
  | G g ->
    Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}"
      (jescape g.gname) (jfloat g.g)
  | H h ->
    Printf.sprintf
      "{\"type\":\"histogram\",\"name\":\"%s\",\"unit\":\"%s\",\"count\":%d,\
       \"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
      (jescape h.hname) (jescape h.hunit) h.n (jfloat h.sum) (jfloat h.mn)
      (jfloat h.mx)
      (jfloat (quantile h 0.5))
      (jfloat (quantile h 0.9))
      (jfloat (quantile h 0.99))

let to_jsonl () =
  let rows =
    Hashtbl.fold
      (fun name m acc ->
        if interesting m then (name, metric_to_json m) :: acc else acc)
      registry []
    |> List.sort compare
  in
  String.concat "" (List.map (fun (_, j) -> j ^ "\n") rows)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c <- 0
      | G g ->
        g.g <- 0.0;
        g.gtouched <- false
      | H h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.0;
        h.n <- 0;
        h.mn <- infinity;
        h.mx <- neg_infinity)
    registry
