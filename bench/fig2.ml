(* Figure 2 of the paper: the optimization-sequence space of adpcm on the
   TI-C6713-like machine, and focused vs random iterative search.

   Fig 2(a): sequences within 5% of the best, projected onto the
   (length-2 prefix, length-3 suffix) plane — the paper's point is that
   near-optimal points are scattered all over the space, and that a model
   trained on *other* programs predicts a region containing the optimum.

   Fig 2(b): best-performance-so-far vs number of evaluations, RANDOM
   (averaged over trials) vs FOCUSSED (model-guided); the paper reports
   38% vs 86% of the available improvement after 10 evaluations, with
   random needing >80 evaluations to match. *)

let target_name = "adpcm"

let config = Mach.Config.c6713_like

let sample_count () = match !Util.scale with Util.Fast -> 1200 | Util.Full -> 6000

let budget () = match !Util.scale with Util.Fast -> 60 | Util.Full -> 100

let random_trials () = match !Util.scale with Util.Fast -> 10 | Util.Full -> 20

(* The model trained with adpcm held out (the honest protocol). *)
let loo_model kb =
  let kb = Knowledge.Kb.without_program kb ~prog:target_name in
  let target = Workloads.program (Workloads.by_name_exn target_name) in
  let feats =
    Icc.Features.restrict_to_similarity (Icc.Features.extract target)
  in
  Search.Focused.fit_model kb ~arch:config.Mach.Config.name
    ~params:Search.Focused.default_params ~target_features:feats

let fig2a () =
  Util.header
    "Fig 2(a): near-optimal points in the adpcm optimization space (c6713)";
  let kb = Util.kb_for config in
  let eng = Util.engine_for config in
  let target = Workloads.program (Workloads.by_name_exn target_name) in
  let o0 = (Engine.eval eng target []).Engine.cost in
  let n = sample_count () in
  Fmt.pr "sampling %d distinct length-5 sequences (space size %d)...@." n
    (Search.Space.cardinality ());
  let rng = Random.State.make [| 20080101 |] in
  let seqs = Search.Space.sample_distinct rng n in
  (* the sweep runs in journaled chunks (each chunk one engine batch:
     parallel across the pool when -j is set, free on a warm cache); a
     killed run resumes from the last completed chunk *)
  let costs = Util.sweep_costs eng ~id:"fig2a" target seqs in
  let scored = List.mapi (fun i s -> (s, costs.(i))) seqs in
  let best_cost = List.fold_left (fun a (_, c) -> min a c) infinity scored in
  let good = List.filter (fun (_, c) -> c <= 1.05 *. best_cost) scored in
  let best_seq, _ =
    List.find (fun (_, c) -> c = best_cost) scored
  in
  Fmt.pr "O0 = %.0f cycles; best sampled = %.0f (%.1f%% better)@." o0 best_cost
    (100.0 *. (o0 -. best_cost) /. o0);
  Fmt.pr "best sequence: %s@." (Passes.Pass.sequence_to_string best_seq);
  Fmt.pr "points within 5%% of optimum: %d of %d sampled (%.2f%%)@."
    (List.length good) n
    (100.0 *. float_of_int (List.length good) /. float_of_int n);

  (* scatter: how spread are the good points over the projection plane? *)
  let npass = Passes.Pass.count in
  let prefix_cells = Hashtbl.create 64 and suffix_cells = Hashtbl.create 64 in
  List.iter
    (fun (s, _) ->
      Hashtbl.replace prefix_cells (Search.Space.prefix2_index s) ();
      Hashtbl.replace suffix_cells (Search.Space.suffix3_index s) ())
    good;
  Fmt.pr
    "scatter: good points occupy %d distinct prefix-2 cells (of %d) and %d \
     distinct suffix-3 cells@."
    (Hashtbl.length prefix_cells) (npass * npass)
    (Hashtbl.length suffix_cells);

  (* coarse density plot over (first pass, second pass) of the prefix *)
  Util.subheader "density of <=5% points by (pass1, pass2) prefix";
  let grid = Array.make_matrix npass npass 0 in
  List.iter
    (fun (s, _) ->
      match s with
      | a :: b :: _ ->
        let i = Passes.Pass.to_index a and j = Passes.Pass.to_index b in
        grid.(i).(j) <- grid.(i).(j) + 1
      | _ -> ())
    good;
  Fmt.pr "        %s@."
    (String.concat " "
       (List.map (fun p -> Printf.sprintf "%4s" (String.sub (Passes.Pass.name p) 0 (min 4 (String.length (Passes.Pass.name p))))) Passes.Pass.all));
  List.iteri
    (fun i p ->
      Fmt.pr "%-8s" (Passes.Pass.name p);
      Array.iter
        (fun c -> Fmt.pr "%4s " (if c = 0 then "." else string_of_int c))
        grid.(i);
      Fmt.pr "@.")
    Passes.Pass.all;

  (* the model's predicted region: top-K sequences by model probability,
     K = number of good points; does it capture the optimum (the paper's
     contour does)? *)
  Util.subheader "model-predicted region (trained without adpcm)";
  let model = loo_model kb in
  let with_lp =
    List.map (fun (s, c) -> (s, c, Search.Seqmodel.log_prob model s)) scored
  in
  let sorted_by_lp =
    List.sort (fun (_, _, a) (_, _, b) -> compare b a) with_lp
  in
  let k = max (List.length good) (n / 20) in
  let region = List.filteri (fun i _ -> i < k) sorted_by_lp in
  let region_good =
    List.length (List.filter (fun (_, c, _) -> c <= 1.05 *. best_cost) region)
  in
  let optimum_in_region =
    List.exists (fun (s, _, _) -> s = best_seq) region
  in
  let base_rate = float_of_int (List.length good) /. float_of_int n in
  let region_rate = float_of_int region_good /. float_of_int k in
  Fmt.pr "region = top %d sequences by model probability (%.1f%% of samples)@."
    k (100.0 *. float_of_int k /. float_of_int n);
  Fmt.pr "good-point density: %.2f%% inside region vs %.2f%% overall (%.1fx \
          enrichment)@."
    (100.0 *. region_rate) (100.0 *. base_rate)
    (region_rate /. max 1e-9 base_rate);
  Fmt.pr "optimal sequence inside predicted region: %b  (paper: the contours \
          contain the optimum)@."
    optimum_in_region

let fig2b () =
  Util.header
    "Fig 2(b): focused vs random search on adpcm (c6713), % of max improvement";
  let kb = Util.kb_for config in
  let eng = Util.engine_for config in
  let target = Workloads.program (Workloads.by_name_exn target_name) in
  let eval = Icc.Characterize.evaluator ~engine:eng target in
  let o0 = eval [] in
  let budget = budget () in
  (* RANDOM, averaged over trials (paper: average of 20 trials).  The
     schedule of every trial is known up front (random_averaged uses
     seeds seed + 1000t), so one engine batch prewarms the cache and the
     averaged walk below runs entirely on hits. *)
  let trials = random_trials () in
  Fmt.pr "random search: %d trials x %d evaluations...@." trials budget;
  ignore
    (Engine.costs eng target
       (List.concat_map
          (fun t ->
            Array.to_list
              (Search.Strategies.random_plan ~seed:(101 + (1000 * t)) ~budget
                 ()))
          (List.init trials Fun.id)));
  let rand_curve =
    Search.Strategies.random_averaged ~seed:101 ~budget ~trials eval
  in
  (* FOCUSSED: Markov model, leave-one-out trained; averaged over the same
     number of trials for fairness *)
  Fmt.pr "focused search: %d trials x %d evaluations...@." trials budget;
  let model = loo_model kb in
  let foc_acc = Array.make budget 0.0 in
  for t = 0 to trials - 1 do
    let r = Search.Focused.search ~seed:(500 + t) ~budget model eval in
    Array.iteri
      (fun i c -> foc_acc.(i) <- foc_acc.(i) +. c)
      r.Search.Strategies.history
  done;
  let foc_curve = Array.map (fun v -> v /. float_of_int trials) foc_acc in
  (* 100% = the best LENGTH-5 sequence known for adpcm: the searched
     space's own optimum (the long fixed pipelines in the KB are not
     reachable by either search and would deflate both curves) *)
  let kb_best =
    match
      Knowledge.Kb.top_experiments kb ~prog:target_name
        ~arch:config.Mach.Config.name ~k:1 ~length:Search.Space.default_length
        ()
    with
    | e :: _ -> float_of_int e.Knowledge.Kb.cycles
    | [] -> infinity
  in
  let best =
    min kb_best
      (min (Array.fold_left min infinity rand_curve)
         (Array.fold_left min infinity foc_curve))
  in
  let pct c = 100.0 *. (o0 -. c) /. (o0 -. best) in
  Fmt.pr "O0 = %.0f cycles, best known = %.0f (max improvement %.1f%%)@." o0
    best
    (100.0 *. (o0 -. best) /. o0);
  let marks =
    List.filter (fun i -> i <= budget) [ 1; 2; 5; 10; 20; 50; 80; 100 ]
  in
  Util.print_table
    [ "evaluations"; "RANDOM %"; "FOCUSSED %" ]
    (List.map
       (fun i ->
         [
           string_of_int i;
           Util.pct (pct rand_curve.(i - 1));
           Util.pct (pct foc_curve.(i - 1));
         ])
       marks);
  let r10 = pct rand_curve.(min budget 10 - 1) in
  let f10 = pct foc_curve.(min budget 10 - 1) in
  let rand_catchup =
    let target = foc_curve.(min budget 10 - 1) in
    let rec find i =
      if i >= budget then Printf.sprintf ">%d" budget
      else if rand_curve.(i) <= target then string_of_int (i + 1)
      else find (i + 1)
    in
    find 0
  in
  Fmt.pr
    "@.headline: at 10 evaluations random achieves %.0f%%, focused %.0f%% of \
     the available improvement@."
    r10 f10;
  Fmt.pr "random search needs %s evaluations to match focused@10  (paper: \
          38%% vs 86%%, >80 evals)@."
    rand_catchup

let run () =
  fig2a ();
  fig2b ()
