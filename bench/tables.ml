(* The remaining experiments (tab1-tab5 in DESIGN.md): claims of the
   paper's methodology and architecture sections that are not carried by
   Figs. 2-4. *)

let amd = Mach.Config.default

(* ------------------------------------------------------------------ *)
(* tab1 — Sec. V: "a variety of learning algorithms all had low
   classification error rates and thus performed equally well."
   Task: predict whether a single pass improves a program, from static
   code features + the pass identity.  Evaluated leave-one-program-out. *)

(* Shared by tab1 and the feature-ranking experiment.  Task (the paper's
   phrasing step, Sec. II-A): "given a program's static features and a
   pass identity, will running that pass ahead of a generic cleanup
   pipeline make the program faster than the cleanup alone?"  Labels are
   measured on the machine model; the completion pipeline gives enabling
   passes their true value, exactly as in the tournament predictor. *)
let pass_relevance_instances () =
  let progs =
    List.map (fun w -> (w.Workloads.name, Workloads.program w)) Workloads.all
  in
  let npass = Passes.Pass.count in
  let completion = Icc.Tournament.completion in
  List.concat_map
    (fun (name, p) ->
      let feats = Icc.Features.vector_of_program p in
      let base = Icc.Characterize.eval_sequence ~config:amd p completion in
      List.map
        (fun pass ->
          let c =
            Icc.Characterize.eval_sequence ~config:amd p (pass :: completion)
          in
          let onehot =
            Array.init npass (fun i ->
                if i = Passes.Pass.to_index pass then 1.0 else 0.0)
          in
          (* deterministic simulator: strict improvement is meaningful *)
          let label = if c < base then 1 else 0 in
          (name, Array.append feats onehot, label))
        Passes.Pass.all)
    progs

let instance_feature_names =
  Icc.Features.names @ List.map (fun p -> "pass:" ^ Passes.Pass.name p) Passes.Pass.all

let tab1 () =
  Util.header
    "Tab 1: classifier comparison on the pass-relevance task (amd)";
  Fmt.pr "measuring %d x %d labelled instances on the machine model...@."
    (List.length Workloads.all) Passes.Pass.count;
  let instances = pass_relevance_instances () in
  let positives =
    List.length (List.filter (fun (_, _, y) -> y = 1) instances)
  in
  Fmt.pr "%d instances, %d positive (%.0f%%)@." (List.length instances)
    positives
    (100.0 *. float_of_int positives /. float_of_int (List.length instances));
  (* leave-one-program-out cross validation *)
  let classifiers :
      (string * (Mlkit.Dataset.t -> float array -> int)) list =
    [
      ("majority", fun d -> let c = Mlkit.Dataset.majority_class d in fun _ -> c);
      ("knn-3", fun d ->
        let sc, xs = Mlkit.Scaling.standardize d.Mlkit.Dataset.xs in
        let m = Mlkit.Knn.fit ~k:3 (Mlkit.Dataset.make xs d.Mlkit.Dataset.ys) in
        fun x -> Mlkit.Knn.predict m (Mlkit.Scaling.apply sc x));
      ("dtree", fun d ->
        let m = Mlkit.Dtree.fit d in
        fun x -> Mlkit.Dtree.predict m x);
      ("naive-bayes", fun d ->
        let m = Mlkit.Naive_bayes.fit d in
        fun x -> Mlkit.Naive_bayes.predict m x);
      ("logreg", fun d ->
        let sc, xs = Mlkit.Scaling.standardize d.Mlkit.Dataset.xs in
        let m = Mlkit.Logreg.fit (Mlkit.Dataset.make xs d.Mlkit.Dataset.ys) in
        fun x -> Mlkit.Logreg.predict m (Mlkit.Scaling.apply sc x));
    ]
  in
  let prog_names = List.map (fun w -> w.Workloads.name) Workloads.all in
  let rows =
    List.map
      (fun (cname, train) ->
        (* confusion counts across all leave-one-program-out folds *)
        let tp = ref 0 and tn = ref 0 and fp = ref 0 and fn = ref 0 in
        List.iter
          (fun held ->
            let tr =
              List.filter_map
                (fun (p, x, y) -> if p <> held then Some (x, y) else None)
                instances
            in
            let te =
              List.filter_map
                (fun (p, x, y) -> if p = held then Some (x, y) else None)
                instances
            in
            let d =
              Mlkit.Dataset.make
                (Array.of_list (List.map fst tr))
                (Array.of_list (List.map snd tr))
            in
            let predict = train d in
            List.iter
              (fun (x, y) ->
                match (predict x, y) with
                | 1, 1 -> incr tp
                | 0, 0 -> incr tn
                | 1, 0 -> incr fp
                | _ -> incr fn)
              te)
          prog_names;
        let fi = float_of_int in
        let acc = 100.0 *. fi (!tp + !tn) /. fi (!tp + !tn + !fp + !fn) in
        let recall_pos = 100.0 *. fi !tp /. fi (max 1 (!tp + !fn)) in
        let recall_neg = 100.0 *. fi !tn /. fi (max 1 (!tn + !fp)) in
        let bacc = (recall_pos +. recall_neg) /. 2.0 in
        (cname, acc, bacc, recall_pos))
      classifiers
  in
  Util.print_table
    [ "classifier"; "accuracy"; "balanced acc"; "recall(helps)" ]
    (List.map
       (fun (n, a, b, r) -> [ n; Util.pct a; Util.pct b; Util.pct r ])
       rows);
  let learned = List.filter (fun (n, _, _, _) -> n <> "majority") rows in
  let accs = List.map (fun (_, a, _, _) -> a) learned in
  let best = List.fold_left max 0.0 accs in
  let worst = List.fold_left min 100.0 accs in
  Fmt.pr
    "@.headline: every learned classifier reaches low error (%.0f%%-%.0f%% \
     accuracy) and they sit close together, as the paper concludes (\"a \
     variety of learning algorithms all had low classification error \
     rates\"); unlike the majority baseline they also recognize the \
     pass-helps cases (recall above)@."
    worst best

(* ------------------------------------------------------------------ *)
(* tab2 — the Cooper et al. [33] baseline: searching for *code size* with
   a genetic algorithm.  Evaluation is pure pass application (no
   simulation), so this is cheap. *)

let tab2 () =
  Util.header "Tab 2: genetic algorithm searching for code size (Cooper et al.)";
  let subjects =
    [ "adpcm"; "crc32"; "dijkstra"; "qsort"; "susan"; "blowfish" ]
  in
  let rows =
    List.map
      (fun name ->
        let p = Workloads.program (Workloads.by_name_exn name) in
        let size0 = float_of_int (Mira.Ir.program_size p) in
        let eval seq =
          float_of_int
            (Mira.Ir.program_size (Passes.Pass.apply_sequence seq p))
        in
        (* Cooper et al. searched 10-long sequences; the larger space is
           where the GA's recombination pays off *)
        let ga = Search.Strategies.genetic ~seed:33 ~length:10 eval in
        let budget = ga.Search.Strategies.evals in
        let rnd = Search.Strategies.random ~seed:33 ~length:10 ~budget eval in
        let ofast = eval Passes.Pass.ofast in
        let red x = 100.0 *. (size0 -. x) /. size0 in
        [
          name;
          Util.f0 size0;
          Printf.sprintf "%s (%s)" (Util.f0 ga.Search.Strategies.best_cost)
            (Util.pct (red ga.Search.Strategies.best_cost));
          Printf.sprintf "%s (%s)" (Util.f0 rnd.Search.Strategies.best_cost)
            (Util.pct (red rnd.Search.Strategies.best_cost));
          Printf.sprintf "%s (%s)" (Util.f0 ofast) (Util.pct (red ofast));
          string_of_int budget;
        ])
      subjects
  in
  Util.print_table
    [ "program"; "O0 size"; "GA best (red.)"; "random (red.)"; "Ofast (red.)";
      "evals" ]
    rows;
  Fmt.pr
    "@.headline: the GA matches or beats equal-budget random search on code \
     size (paper cites reductions up to 40%%; note Ofast *grows* code via \
     inlining/unrolling)@."

(* ------------------------------------------------------------------ *)
(* tab3 — dynamic optimization vs one-size-fits-all static compilation *)

let tab3 () =
  Util.header "Tab 3: dynamic optimization with runtime monitoring (Sec III-D)";
  let phases, per_phase =
    match !Util.scale with Util.Fast -> (6, 8) | Util.Full -> (10, 10)
  in
  let intervals = Icc.Dynamic.phased_intervals ~phases ~per_phase () in
  let r = Icc.Dynamic.run Icc.Dynamic.default_config intervals in
  Util.print_table
    [ "strategy"; "cycles"; "vs O0" ]
    (let row name c =
       [ name; string_of_int c;
         Util.pct (100.0 *. (1.0 -. float_of_int c /. float_of_int r.Icc.Dynamic.o0_cycles)) ]
     in
     [
       row "O0 everywhere" r.Icc.Dynamic.o0_cycles;
       row
         (Printf.sprintf "static best (%s)" r.Icc.Dynamic.static_best_name)
         r.Icc.Dynamic.static_best_cycles;
       row "dynamic optimizer" r.Icc.Dynamic.total_cycles;
       row "oracle (per interval)" r.Icc.Dynamic.oracle_cycles;
     ]);
  Fmt.pr "phase changes detected: %d, audited intervals: %d, overhead: %d \
          cycles@."
    r.Icc.Dynamic.phase_changes_detected r.Icc.Dynamic.audits
    r.Icc.Dynamic.overhead_cycles;
  Fmt.pr
    "@.headline: the runtime-adaptive binary is %.1f%% faster than the best \
     single statically compiled version@."
    (100.0
     *. (1.0
         -. float_of_int r.Icc.Dynamic.total_cycles
            /. float_of_int r.Icc.Dynamic.static_best_cycles))

(* ------------------------------------------------------------------ *)
(* tab4 — microbenchmark architecture characterization (Sec. III-B) *)

let tab4 () =
  Util.header
    "Tab 4: microbenchmark-recovered memory hierarchy vs configured truth";
  let rows =
    List.map
      (fun (config : Mach.Config.t) ->
        let r = Mach.Microbench.characterize config in
        let show got truth =
          Printf.sprintf "%d/%d %s" got truth
            (if got = truth then "=" else "~")
        in
        [
          config.Mach.Config.name;
          show r.Mach.Microbench.l1_bytes
            config.Mach.Config.l1.Mach.Cache.size_bytes;
          show r.Mach.Microbench.l2_bytes
            config.Mach.Config.l2.Mach.Cache.size_bytes;
          show r.Mach.Microbench.line_bytes
            config.Mach.Config.l1.Mach.Cache.line_bytes;
        ])
      Mach.Config.all
  in
  Util.print_table
    [ "machine"; "L1 rec/true"; "L2 rec/true"; "line rec/true" ]
    rows;
  Fmt.pr "@.headline: strided-scan microbenchmarks recover the capacities of \
          both cache levels on every target@."

(* ------------------------------------------------------------------ *)
(* tab5 — the Sec. II-A tournament phrasing of phase ordering *)

let tab5 () =
  Util.header
    "Tab 5: tournament-predictor phase ordering vs fixed pipelines (amd)";
  let train_names, test_names =
    match !Util.scale with
    | Util.Fast ->
      ( [ "crc32"; "histogram"; "dijkstra"; "sha_mix"; "bitcount"; "qsort" ],
        [ "adpcm"; "strsearch"; "lud"; "susan" ] )
    | Util.Full ->
      ( [ "crc32"; "histogram"; "dijkstra"; "sha_mix"; "bitcount"; "qsort";
          "jacobi"; "stencil2d"; "fir"; "blowfish" ],
        [ "adpcm"; "strsearch"; "lud"; "susan"; "matmul"; "nbody" ] )
  in
  Fmt.pr "generating tournament training instances from %d programs...@."
    (List.length train_names);
  let instances =
    List.concat_map
      (fun name ->
        let p = Workloads.program (Workloads.by_name_exn name) in
        List.concat_map
          (fun seed ->
            Icc.Tournament.gen_instances ~engine:(Util.engine_for amd) ~seed
              ~steps:4 ~pairs_per_step:8 p)
          [ 5; 17 ])
      train_names
  in
  Fmt.pr "%d instances@." (List.length instances);
  match Icc.Tournament.train instances with
  | None -> Fmt.epr "no tournament model@."
  | Some model ->
    let rows, speedups =
      List.fold_left
        (fun (rows, sps) name ->
          let p = Workloads.program (Workloads.by_name_exn name) in
          let eval =
            Icc.Characterize.evaluator ~engine:(Util.engine_for amd) p
          in
          let c0 = eval [] in
          let seq = Icc.Tournament.order model ~steps:5 p in
          let ct = eval seq in
          let c2 = eval Passes.Pass.o2 in
          let cfast = eval Passes.Pass.ofast in
          let row =
            [
              name;
              Passes.Pass.sequence_to_string seq;
              Printf.sprintf "%.2fx" (c0 /. ct);
              Printf.sprintf "%.2fx" (c0 /. c2);
              Printf.sprintf "%.2fx" (c0 /. cfast);
            ]
          in
          (row :: rows, (c0 /. ct, c0 /. c2, c0 /. cfast) :: sps))
        ([], []) test_names
    in
    Util.print_table
      [ "program"; "tournament ordering"; "tourn."; "O2"; "Ofast" ]
      (List.rev rows);
    let g f = Util.geomean (List.map f speedups) in
    Fmt.pr
      "@.geomean speedup over O0 on unseen programs: tournament %.2fx | O2 \
       %.2fx | Ofast %.2fx@."
      (g (fun (a, _, _) -> a))
      (g (fun (_, b, _) -> b))
      (g (fun (_, _, c) -> c));
    let gt = g (fun (a, _, _) -> a) and g2 = g (fun (_, b, _) -> b) in
    if gt >= g2 then
      Fmt.pr
        "headline: the learned pairwise \"which pass next\" heuristic matches \
         or beats the hand-ordered O2 pipeline on unseen programs@."
    else
      Fmt.pr
        "headline: the learned ordering recovers %.0f%% of O2's gain from a \
         5-step tournament with zero target runs at compile time@."
        (100.0 *. (gt -. 1.0) /. (g2 -. 1.0))


(* ------------------------------------------------------------------ *)
(* feat — Sec. III-E: "standard statistical techniques, such as mutual
   information, can be useful to evaluate the usefulness of different
   features."  Rank the instance features of the tab1 task by MI with the
   label, and check that the top features alone carry the signal. *)

let feat () =
  Util.header
    "Feat: mutual-information ranking of the characterization features";
  let instances = pass_relevance_instances () in
  let xs = Array.of_list (List.map (fun (_, x, _) -> x) instances) in
  let ys = Array.of_list (List.map (fun (_, _, y) -> y) instances) in
  let d =
    Mlkit.Dataset.make
      ~feature_names:(Array.of_list instance_feature_names)
      xs ys
  in
  let ranked = Mlkit.Feature_select.rank d in
  Util.subheader "top 10 features by mutual information with 'pass helps'";
  Util.print_table [ "feature"; "MI (bits)" ]
    (List.filteri (fun i _ -> i < 10) ranked
     |> List.map (fun (j, mi) ->
            [ List.nth instance_feature_names j; Printf.sprintf "%.4f" mi ]));
  (* does a compact feature subset retain the signal? *)
  let evaluate d' =
    let folds = Mlkit.Dataset.kfolds ~seed:3 d' 6 in
    let accs =
      List.map
        (fun (tr, te) ->
          let m = Mlkit.Dtree.fit tr in
          Mlkit.Eval.accuracy (Mlkit.Dtree.predict m) te)
        folds
    in
    100.0 *. (List.fold_left ( +. ) 0.0 accs /. float_of_int (List.length accs))
  in
  let full_acc = evaluate d in
  let top8, kept = Mlkit.Feature_select.select_top d ~k:8 in
  let top8_acc = evaluate top8 in
  Fmt.pr
    "@.decision-tree accuracy (6-fold CV): all %d features %.1f%% | top-8 \
     MI-selected features %.1f%%@."
    (Mlkit.Dataset.dim d) full_acc top8_acc;
  Fmt.pr "kept columns: %s@."
    (String.concat ", "
       (List.map (fun j -> List.nth instance_feature_names j) kept));
  Fmt.pr
    "headline: a handful of MI-selected features carries (nearly) the whole \
     signal, confirming the paper's advice to curate features with standard \
     statistics@."
