(* Shared infrastructure for the experiment harness: scale settings, disk
   caching of knowledge bases (they are the expensive artifact), and table
   formatting. *)

type scale = Fast | Full

let scale = ref Fast

let per_program () = match !scale with Fast -> 60 | Full -> 120

(* worker processes for the evaluation engine (main.ml's -j flag) *)
let jobs = ref 1

(* main.ml's --json flag: the micro experiment writes BENCH_micro.json,
   the sweep experiment BENCH_sweep.json *)
let json_out = ref false

(* main.ml's --no-share flag: disable the engine's prefix-sharing trie
   and simulation dedup (the differential baseline) *)
let share = ref true

(* main.ml's --distribute flag: run checkpointed sweeps on N forked
   worker processes (coordinator/worker sharding, 1 = in-process) *)
let distribute = ref 1

(* main.ml's --tstore flag: persistent trace store directory for the
   arch experiment's cross-run warm phase (empty first run populates it;
   later runs replay straight from disk) *)
let tstore : string option ref = ref None

let data_dir = "bench_data"

let ensure_dir () =
  if not (Sys.file_exists data_dir) then Sys.mkdir data_dir 0o755

(* One evaluation engine per architecture, each backed by a persistent
   result cache under bench_data/: re-running an experiment costs cache
   lookups, not simulations. *)
let engines : (string, Engine.t) Hashtbl.t = Hashtbl.create 4

let engine_for (config : Mach.Config.t) : Engine.t =
  match Hashtbl.find_opt engines config.Mach.Config.name with
  | Some eng -> eng
  | None ->
    ensure_dir ();
    let cache =
      Engine.Rcache.open_dir
        (Filename.concat data_dir ("rescache-" ^ config.Mach.Config.name))
    in
    let eng = Engine.create ~jobs:!jobs ~cache ~share:!share config in
    Hashtbl.replace engines config.Mach.Config.name eng;
    eng

(* Checkpointed sweep: evaluate [seqs] on [target] in journaled chunks
   (bench_data/journal-<id>.log, crash-safe appends), so a killed run —
   ^C, OOM, power — resumes from the last completed chunk instead of
   restarting, and produces byte-identical costs.  The journal key binds
   the program, machine, and sequence list: any change invalidates it. *)
let sweep_chunk = 100

let sweep_costs (eng : Engine.t) ~id target seqs =
  ensure_dir ();
  let seqs = Array.of_list seqs in
  let key =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            (Mach.Config.digest (Engine.config eng)
            :: Engine.ir_digest target
            :: Array.to_list
                 (Array.map Passes.Pass.sequence_to_string seqs))))
  in
  let path = Filename.concat data_dir ("journal-" ^ id ^ ".log") in
  if !distribute <= 1 then
    Engine.Journal.run ~path ~key ~chunk_size:sweep_chunk
      ~n:(Array.length seqs) (fun lo hi ->
        Engine.costs eng target
          (Array.to_list (Array.sub seqs lo (hi - lo))))
  else begin
    (* distributed: same journal key as the serial path (it already
       binds program, machine and sequence list), shards served to
       forked workers, per-worker caches folded back into this engine's
       cache — bit-identical to the in-process sweep by construction *)
    let n = Array.length seqs in
    let spec =
      { Engine.Dist.job = key; n; chunk_size = sweep_chunk;
        shards = min n (!distribute * 4) }
    in
    let config = Engine.config eng in
    let make_eval ~worker_dir =
      let cache =
        Engine.Rcache.open_dir (Filename.concat worker_dir "cache")
      in
      let weng = Engine.create ~jobs:1 ~cache ~share:!share config in
      fun lo hi ->
        Engine.costs weng target
          (Array.to_list (Array.sub seqs lo (hi - lo)))
    in
    let _st, costs =
      Engine.Dist.sweep_local ~workers:!distribute
        ~dir:(Filename.concat data_dir ("dist-" ^ id))
        ~cache:(Engine.cache eng)
        ~meta:[ ("bench_id", id); ("arch", config.Mach.Config.name) ]
        spec ~make_eval
    in
    costs
  end

(* One knowledge base per (arch, per_program); built over the full workload
   suite and cached on disk.  Experiments requiring leave-one-out use
   Kb.without_program on the loaded KB. *)
let kb_for (config : Mach.Config.t) : Knowledge.Kb.t =
  ensure_dir ();
  let path =
    Printf.sprintf "%s/suite-%s-pp%d.kb" data_dir config.Mach.Config.name
      (per_program ())
  in
  if Sys.file_exists path then Knowledge.Kb.load path
  else begin
    Fmt.pr "  [building knowledge base for %s: %d programs x %d sequences...]@."
      config.Mach.Config.name
      (List.length Workloads.all)
      (per_program ());
    let t0 = Unix.gettimeofday () in
    let programs =
      List.map (fun w -> (w.Workloads.name, Workloads.program w)) Workloads.all
    in
    let kb =
      Icc.Characterize.build_kb ~engine:(engine_for config)
        ~per_program:(per_program ()) programs
    in
    Knowledge.Kb.save kb path;
    Fmt.pr "  [knowledge base ready: %d experiments in %.0fs, cached at %s]@."
      (Knowledge.Kb.size kb)
      (Unix.gettimeofday () -. t0)
      path;
    kb
  end

let header title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "============================================================@."

let subheader t = Fmt.pr "@.--- %s ---@." t

let geomean xs =
  match xs with
  | [] -> 1.0
  | _ ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))

(* simple aligned table printer *)
let print_table (headers : string list) (rows : string list list) =
  let cols = List.length headers in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i < cols then Fmt.pr "%s%s  " cell (String.make (widths.(i) - String.length cell) ' '))
      row;
    Fmt.pr "@."
  in
  print_row headers;
  print_row (List.map (fun _ -> "") headers |> List.mapi (fun i _ -> String.make widths.(i) '-'));
  List.iter print_row rows

let pct x = Printf.sprintf "%.1f%%" x
let f2 x = Printf.sprintf "%.2f" x
let f0 x = Printf.sprintf "%.0f" x
