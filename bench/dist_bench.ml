(* The distributed-sweep benchmark: coordinator/worker sharding against
   the single-process sweep, on fig2a's sampling (adpcm under distinct
   length-5 sequences on the c6713-like machine).

   Two timed comparisons, every run on fresh cacheless engines and
   fresh run directories so the timings are honest (no warm cache, no
   resumed journal), each with a differential oracle demanding the
   distributed cost vectors bit-identical to the serial one before any
   speedup is reported:

   - simulation-bound: the evaluation is pure local CPU (the
     simulator).  Speedup here tracks the machine's core count — on a
     single-core host the workers timeshare and the numbers show the
     orchestration overhead instead; [cores] is reported alongside.

   - measurement-bound: each item's evaluation includes a fixed
     target-measurement latency, the regime the paper's cluster sweeps
     live in (a sequence's cost comes from running it on a target
     system, so the sweep waits far more than it computes).  Workers
     overlap their waits regardless of core count, so this is the
     representative scaling number for distributed operation.

   A final fault-injected phase re-runs the 2-worker sweep with
   dist-worker-exit@0 installed — a worker is killed right after
   journaling the first chunk of shard 0 — and checks the sweep still
   completes with the identical cost vector, counting the deaths,
   re-queues and respawns it survived.

   With --json the numbers land in BENCH_dist.json (baseline checked
   in; CI regenerates and uploads one per run). *)

let target_name = "adpcm"
let config = Mach.Config.c6713_like

let sample_count () =
  match !Util.scale with Util.Fast -> 400 | Util.Full -> 1600

(* the measurement-bound phase: fewer items, each carrying the modeled
   target-system latency *)
let measured_count () =
  match !Util.scale with Util.Fast -> 200 | Util.Full -> 400

let measured_latency = 0.04 (* s per item: a fast target-system run *)

let json_file = "BENCH_dist.json"

let cores () =
  match
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
    let line = input_line ic in
    ignore (Unix.close_process_in ic);
    int_of_string_opt (String.trim line)
  with
  | Some n -> n
  | None | (exception _) -> 1

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* a fresh run directory per timed phase: resumable journals are the
   feature, but here they would fake the speedup *)
let fresh_dir name =
  Util.ensure_dir ();
  let dir = Filename.concat Util.data_dir ("distbench-" ^ name) in
  rm_rf dir;
  dir

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* chunked evaluation with the phase's per-item latency — the same
   function drives the serial baseline and every worker, so the
   comparison is fair by construction *)
let eval_chunk ~latency eng target seqs lo hi =
  let costs =
    Engine.costs eng target (Array.to_list (Array.sub seqs lo (hi - lo)))
  in
  if latency > 0.0 then
    ignore (Unix.select [] [] [] (latency *. float_of_int (hi - lo)));
  costs

let chunk_size = 25

let serial_costs ~latency target seqs =
  let eng = Engine.create ~jobs:1 ~share:!Util.share config in
  let n = Array.length seqs in
  let out = Array.make n 0.0 in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + chunk_size) in
    Array.blit (eval_chunk ~latency eng target seqs !lo hi) 0 out !lo (hi - !lo);
    lo := hi
  done;
  Engine.Rcache.close (Engine.cache eng);
  out

let dist_costs ~latency ~workers ~dir target seqs =
  let n = Array.length seqs in
  let spec =
    { Engine.Dist.job = Printf.sprintf "distbench-%s-%d-%f" target_name n latency;
      n; chunk_size; shards = min n (workers * 4) }
  in
  let make_eval ~worker_dir =
    let cache = Engine.Rcache.open_dir (Filename.concat worker_dir "cache") in
    let weng = Engine.create ~jobs:1 ~cache ~share:!Util.share config in
    eval_chunk ~latency weng target seqs
  in
  Engine.Dist.sweep_local ~workers ~dir spec ~make_eval

let check_identical ~what serial costs =
  if costs <> serial then begin
    Fmt.epr
      "dist: MISMATCH between serial and %s cost vectors — distribution \
       changed an outcome@."
      what;
    exit 1
  end

(* one serial-vs-{1,2,4}-worker comparison; returns
   (serial wall, [(workers, wall, stats)]) *)
let compare_phase ~tag ~latency target seqs =
  let serial, serial_s =
    timed (fun () -> serial_costs ~latency target seqs)
  in
  let runs =
    List.map
      (fun workers ->
        let dir = fresh_dir (Printf.sprintf "%s-w%d" tag workers) in
        let (st, costs), wall =
          timed (fun () -> dist_costs ~latency ~workers ~dir target seqs)
        in
        check_identical
          ~what:(Printf.sprintf "%s %d-worker" tag workers)
          serial costs;
        (workers, wall, st))
      [ 1; 2; 4 ]
  in
  let speedup wall = Printf.sprintf "%.2fx" (serial_s /. wall) in
  Util.print_table
    [ "mode"; "wall"; "speedup"; "steals"; "deaths" ]
    ([ [ "serial"; Printf.sprintf "%.3fs" serial_s; "1.00x"; "-"; "-" ] ]
     @ List.map
         (fun (w, wall, st) ->
           [ Printf.sprintf "%d worker%s" w (if w = 1 then "" else "s");
             Printf.sprintf "%.3fs" wall; speedup wall;
             string_of_int st.Engine.Dist.steals;
             string_of_int st.Engine.Dist.worker_deaths ])
         runs);
  Fmt.pr "outcomes bit-identical across all worker counts@.";
  (serial, serial_s, runs)

let write_json ~n_sim ~sim_serial_s ~sim_runs ~n_meas ~meas_serial_s
    ~meas_runs ~fault_stats ~fault_s =
  let oc = open_out json_file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"icc-bench-dist/1\",\n";
  p "  \"target\": \"%s\",\n" target_name;
  p "  \"arch\": \"%s\",\n" config.Mach.Config.name;
  p "  \"cores\": %d,\n" (cores ());
  p "  \"sim_sequences\": %d,\n" n_sim;
  p "  \"sim_serial_s\": %.3f,\n" sim_serial_s;
  List.iter
    (fun (w, wall, _) ->
      p "  \"sim_workers%d_s\": %.3f,\n" w wall;
      p "  \"sim_speedup_w%d\": %.2f,\n" w (sim_serial_s /. wall))
    sim_runs;
  p "  \"measured_sequences\": %d,\n" n_meas;
  p "  \"measured_latency_ms\": %.0f,\n" (measured_latency *. 1000.0);
  p "  \"serial_s\": %.3f,\n" meas_serial_s;
  List.iter
    (fun (w, wall, _) ->
      p "  \"workers%d_s\": %.3f,\n" w wall;
      p "  \"speedup_w%d\": %.2f,\n" w (meas_serial_s /. wall))
    meas_runs;
  p "  \"identical\": true,\n";
  let fs : Engine.Dist.stats = fault_stats in
  p "  \"faulted_workers\": 2,\n";
  p "  \"faulted_s\": %.3f,\n" fault_s;
  p "  \"faulted_deaths\": %d,\n" fs.Engine.Dist.worker_deaths;
  p "  \"faulted_requeues\": %d,\n" fs.Engine.Dist.requeues;
  p "  \"faulted_respawns\": %d,\n" fs.Engine.Dist.respawns;
  p "  \"faulted_identical\": true\n";
  p "}\n";
  close_out oc;
  Fmt.pr "@.[wrote %s]@." json_file

let run () =
  Util.header "Distributed sweep: coordinator/worker sharding vs serial";
  let target = Workloads.program (Workloads.by_name_exn target_name) in
  let rng = Random.State.make [| 20080101 |] in
  let n_sim = sample_count () in
  let all_seqs = Array.of_list (Search.Space.sample_distinct rng n_sim) in
  let n_meas = min (measured_count ()) n_sim in
  let meas_seqs = Array.sub all_seqs 0 n_meas in

  Util.subheader
    (Printf.sprintf "simulation-bound: %d sequences, pure local CPU (%d core%s)"
       n_sim (cores ()) (if cores () = 1 then "" else "s"));
  let _, sim_serial_s, sim_runs =
    compare_phase ~tag:"sim" ~latency:0.0 target all_seqs
  in

  Util.subheader
    (Printf.sprintf
       "measurement-bound: %d sequences, %.0fms target-system latency each"
       n_meas (measured_latency *. 1000.0));
  let meas_serial, meas_serial_s, meas_runs =
    compare_phase ~tag:"meas" ~latency:measured_latency target meas_seqs
  in

  (* fault-injected phase: kill a worker right after its first journaled
     chunk and demand the same numbers anyway *)
  Util.subheader "fault injection: dist-worker-exit@0, 2 workers";
  let dir = fresh_dir "faulted" in
  let (fst_, fcosts), fault_s =
    Engine.Faults.with_plan
      (Engine.Faults.parse_exn "dist-worker-exit@0")
      (fun () ->
        timed (fun () ->
            dist_costs ~latency:measured_latency ~workers:2 ~dir target
              meas_seqs))
  in
  check_identical ~what:"fault-injected 2-worker" meas_serial fcosts;
  Fmt.pr
    "survived: %d death(s), %d requeue(s), %d respawn(s), %.3fs, \
     outcomes identical@."
    fst_.Engine.Dist.worker_deaths fst_.Engine.Dist.requeues
    fst_.Engine.Dist.respawns fault_s;
  if !Util.json_out then
    write_json ~n_sim ~sim_serial_s ~sim_runs ~n_meas ~meas_serial_s
      ~meas_runs ~fault_stats:fst_ ~fault_s
