(* The fig2-slice sweep benchmark: the engine's prefix-sharing trie and
   simulation-dedup layer against the no-share baseline, on the sweep
   that dominates every experiment's cost (adpcm under a batch of
   distinct length-5 sequences on the c6713-like machine, exactly
   fig2a's sampling).

   Three timed runs, each through Strategies.exhaustive_batched (the
   sweep path search uses), each on a fresh in-memory cache so "cold"
   means cold:
     1. cold, sharing off  — every miss compiles and simulates alone
     2. cold, sharing on   — shared prefixes compiled once, converging
                             sequences simulated once
     3. warm, sharing on   — the same batch again on the same engine
   A differential oracle checks the cost vectors bit-identical between
   (1) and (2) before any speedup is reported; a mismatch is a
   correctness bug and fails the run.

   With --json the numbers land in BENCH_sweep.json (baseline checked
   in; CI regenerates and uploads one per run). *)

let target_name = "adpcm"
let config = Mach.Config.c6713_like

let sample_count () =
  match !Util.scale with Util.Fast -> 400 | Util.Full -> 1600

let json_file = "BENCH_sweep.json"

type run = { wall : float; sims : int; best : float }

let timed_sweep eng target seqs =
  let t0 = Unix.gettimeofday () in
  let r = Search.Strategies.exhaustive_batched seqs (Engine.costs eng target) in
  let wall = Unix.gettimeofday () -. t0 in
  ( { wall; sims = (Engine.stats eng).Engine.sims;
      best = r.Search.Strategies.best_cost },
    r.Search.Strategies.history )

let write_json ~n ~cold_off ~cold_on ~warm ~identical eng_on =
  let s = Engine.stats eng_on in
  let th, tm, te =
    match Engine.trie eng_on with
    | Some trie ->
      Engine.Pctrie.(hits trie, misses trie, evictions trie)
    | None -> (0, 0, 0)
  in
  let oc = open_out json_file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"icc-bench-sweep/1\",\n";
  p "  \"target\": \"%s\",\n" target_name;
  p "  \"arch\": \"%s\",\n" config.Mach.Config.name;
  p "  \"jobs\": %d,\n" !Util.jobs;
  p "  \"sequences\": %d,\n" n;
  p "  \"cold_no_share_s\": %.3f,\n" cold_off.wall;
  p "  \"cold_share_s\": %.3f,\n" cold_on.wall;
  p "  \"warm_share_s\": %.3f,\n" warm.wall;
  p "  \"speedup_cold\": %.2f,\n" (cold_off.wall /. cold_on.wall);
  p "  \"speedup_warm\": %.2f,\n" (cold_off.wall /. warm.wall);
  p "  \"identical\": %b,\n" identical;
  p "  \"sims_no_share\": %d,\n" cold_off.sims;
  p "  \"sims_share\": %d,\n" cold_on.sims;
  p "  \"dedup_hits\": %d,\n" s.Engine.dedup_hits;
  p "  \"trie_hits\": %d,\n" th;
  p "  \"trie_misses\": %d,\n" tm;
  p "  \"trie_evictions\": %d\n" te;
  p "}\n";
  close_out oc;
  Fmt.pr "@.[wrote %s]@." json_file

let run () =
  Util.header
    "Sweep benchmark: prefix sharing + simulation dedup vs no-share";
  let target = Workloads.program (Workloads.by_name_exn target_name) in
  let n = sample_count () in
  let rng = Random.State.make [| 20080101 |] in
  let seqs = Search.Space.sample_distinct rng n in
  Fmt.pr "%d distinct length-5 sequences on %s (%s), %d jobs@." n
    target_name config.Mach.Config.name !Util.jobs;
  (* fresh in-memory caches: cold means cold, and nothing persists *)
  let eng_off = Engine.create ~jobs:!Util.jobs ~share:false config in
  let eng_on = Engine.create ~jobs:!Util.jobs ~share:true config in
  let cold_off, hist_off = timed_sweep eng_off target seqs in
  let cold_on, hist_on = timed_sweep eng_on target seqs in
  (* the differential oracle: sharing must change the work, never the
     numbers — bit-identical cost vectors or the benchmark fails *)
  let identical = hist_off = hist_on && cold_off.best = cold_on.best in
  if not identical then begin
    Fmt.epr
      "sweep: MISMATCH between no-share and share runs (best %.0f vs \
       %.0f) — sharing changed an outcome@."
      cold_off.best cold_on.best;
    exit 1
  end;
  let warm_before = (Engine.stats eng_on).Engine.sims in
  let warm, _ = timed_sweep eng_on target seqs in
  let warm = { warm with sims = warm.sims - warm_before } in
  let speedup a b = Printf.sprintf "%.2fx" (a.wall /. b.wall) in
  Util.print_table
    [ "mode"; "wall"; "simulations"; "speedup" ]
    [
      [ "cold, no sharing"; Printf.sprintf "%.3fs" cold_off.wall;
        string_of_int cold_off.sims; "1.00x" ];
      [ "cold, sharing"; Printf.sprintf "%.3fs" cold_on.wall;
        string_of_int cold_on.sims; speedup cold_off cold_on ];
      [ "warm, sharing"; Printf.sprintf "%.3fs" warm.wall;
        string_of_int warm.sims; speedup cold_off warm ];
    ];
  let s = Engine.stats eng_on in
  (match Engine.trie eng_on with
   | Some trie ->
     Fmt.pr
       "outcomes bit-identical; dedup hits %d, trie hits %d / misses %d \
        / evictions %d@."
       s.Engine.dedup_hits (Engine.Pctrie.hits trie)
       (Engine.Pctrie.misses trie)
       (Engine.Pctrie.evictions trie)
   | None -> ());
  if !Util.json_out then write_json ~n ~cold_off ~cold_on ~warm ~identical eng_on;
  Engine.Rcache.close (Engine.cache eng_off);
  Engine.Rcache.close (Engine.cache eng_on)
