(* The architecture-grid sweep benchmark: trace-once/model-many against
   per-config full simulation, over the whole workload suite and the
   three preset machine configs.

   Per workload, timed quantities (best-of-N wall time, to damp
   scheduler noise):
     base — one full Flatsim run per config (3x semantic execution);
     cold — Mtrace.generate + Replay.run_grid (the first time a program
            meets the grid: semantics once, then one model fold per
            config), also recorded split into its generate and replay
            components so a sub-1x cold speedup is attributable;
     warm — Replay.run_grid alone (the trace already sits in the trace
            cache: every later config, and every re-measure, is pure
            model folding).

   With --tstore DIR a fourth, cross-run phase runs against the
   persistent trace store (Engine.Tstore): the first invocation
   populates DIR, every later invocation loads each trace back
   (store_load_ms, once — the decode is paid per process, not per
   config) and replays the grid from the loaded trace (store_warm_ms).
   Trace generation is eliminated entirely; the oracle below holds for
   the store-loaded trace too, so the persisted path is bit-identical.

   A differential oracle checks the grid results bit-identical (cycles,
   full counter bank, ret, output, steps) to the three independent
   Flatsim runs before any speedup is reported; a mismatch fails the
   benchmark.

   With --json the numbers land in BENCH_arch.json (baseline checked
   in; CI regenerates and uploads one per run). *)

let configs =
  [| Mach.Config.amd_like; Mach.Config.c6713_like; Mach.Config.embedded |]

let json_file = "BENCH_arch.json"

(* MIRA_BENCH_REPS overrides the repeat count (the cram smoke test runs
   with 1: it checks table/JSON shape, not timing quality) *)
let reps () =
  match Option.bind (Sys.getenv_opt "MIRA_BENCH_REPS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> ( match !Util.scale with Util.Fast -> 5 | Util.Full -> 9)

type store_row = {
  load_ms : float;   (* Tstore.find: read + checksum + decode, once *)
  swarm_ms : float;  (* grid replay from the store-loaded trace *)
  bytes : int;       (* encoded payload size on disk *)
}

type row = {
  name : string;
  base_ms : float;
  cold_ms : float;
  cold_gen_ms : float;
  cold_replay_ms : float;
  warm_ms : float;
  trace_words : int;
  store : store_row option;
}

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    f ();
    let d = Unix.gettimeofday () -. t0 in
    if d < !best then best := d
  done;
  !best *. 1000.0

(* bit-identity of one simulator result pair; Stdlib.compare so float
   returns match by bit-pattern semantics (NaN = NaN) *)
let same (a : Mach.Flatsim.result) (b : Mach.Flatsim.result) =
  Stdlib.compare
    ( a.Mach.Flatsim.cycles, a.Mach.Flatsim.counters, a.Mach.Flatsim.ret,
      a.Mach.Flatsim.output, a.Mach.Flatsim.steps )
    ( b.Mach.Flatsim.cycles, b.Mach.Flatsim.counters, b.Mach.Flatsim.ret,
      b.Mach.Flatsim.output, b.Mach.Flatsim.steps )
  = 0

let bench_workload n ts (w : Workloads.t) : row * bool =
  let p = Workloads.program w in
  let dp = Mira.Decode.decode p in
  let tr = Mach.Mtrace.generate dp in
  (* oracle first: the grid replay must reproduce each config's full
     simulation exactly *)
  let fuel = Mach.Sim.default_fuel in
  let grid = Mach.Replay.run_grid ~configs tr in
  let full =
    Array.map (fun config -> Mach.Flatsim.run ~config ~fuel dp) configs
  in
  let identical = ref (Array.for_all2 same grid full) in
  if not !identical then
    Fmt.epr "arch: MISMATCH on %s — grid replay differs from full \
             simulation@."
      w.Workloads.name;
  let base_ms =
    best_of n (fun () ->
        Array.iter
          (fun config -> ignore (Mach.Flatsim.run ~config ~fuel dp))
          configs)
  in
  let cold_ms =
    best_of n (fun () ->
        let tr = Mach.Mtrace.generate dp in
        ignore (Mach.Replay.run_grid ~configs tr))
  in
  let warm_ms =
    best_of n (fun () -> ignore (Mach.Replay.run_grid ~configs tr))
  in
  (* cold, attributed: the generate half measured alone; the replay
     half of a cold run is exactly the warm quantity (same trace, same
     grid), so alias it rather than re-measure *)
  let cold_gen_ms =
    best_of n (fun () -> ignore (Mach.Mtrace.generate dp))
  in
  let cold_replay_ms = warm_ms in
  let store =
    match ts with
    | None -> None
    | Some ts ->
      let ir_digest = Engine.Pctrie.digest p in
      if not (Engine.Tstore.mem ts ~ir_digest ~fuel) then
        Engine.Tstore.add ts ~ir_digest ~fuel tr;
      let t0 = Unix.gettimeofday () in
      (match Engine.Tstore.find ts ~ir_digest ~fuel with
       | None ->
         Fmt.epr "arch: %s vanished from the trace store@." w.Workloads.name;
         identical := false;
         None
       | Some tr' ->
         let load_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
         (* the oracle extends to the persisted path: the store-loaded
            trace must replay bit-identical to full simulation *)
         let grid' = Mach.Replay.run_grid ~configs tr' in
         if not (Array.for_all2 same grid' full) then begin
           Fmt.epr "arch: MISMATCH on %s — store-loaded replay differs \
                    from full simulation@."
             w.Workloads.name;
           identical := false
         end;
         let swarm_ms =
           best_of n (fun () -> ignore (Mach.Replay.run_grid ~configs tr'))
         in
         let bytes = String.length (Mach.Mtrace.encode tr) in
         Some { load_ms; swarm_ms; bytes })
  in
  ( { name = w.Workloads.name; base_ms; cold_ms; cold_gen_ms;
      cold_replay_ms; warm_ms; trace_words = tr.Mach.Mtrace.n; store },
    !identical )

let write_json ~identical (rows : row list) =
  let with_store = List.for_all (fun r -> r.store <> None) rows in
  let oc = open_out json_file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"icc-bench-arch/2\",\n";
  p "  \"configs\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun c -> Printf.sprintf "%S" c.Mach.Config.name)
          (Array.to_list configs)));
  p "  \"reps\": %d,\n" (reps ());
  p "  \"identical\": %b,\n" identical;
  p "  \"tstore\": %b,\n" with_store;
  p "  \"workloads\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      p
        "    {\"name\": %S, \"base_ms\": %.3f, \"cold_ms\": %.3f, \
         \"cold_gen_ms\": %.3f, \"cold_replay_ms\": %.3f, \"warm_ms\": \
         %.3f, \"speedup_cold\": %.2f, \"speedup_warm\": %.2f, \
         \"trace_words\": %d"
        r.name r.base_ms r.cold_ms r.cold_gen_ms r.cold_replay_ms r.warm_ms
        (r.base_ms /. r.cold_ms) (r.base_ms /. r.warm_ms) r.trace_words;
      (match r.store with
       | Some s ->
         p
           ", \"store_load_ms\": %.3f, \"store_warm_ms\": %.3f, \
            \"speedup_store\": %.2f, \"trace_bytes\": %d"
           s.load_ms s.swarm_ms (r.base_ms /. s.swarm_ms) s.bytes
       | None -> ());
      p "}%s\n" (if i = n - 1 then "" else ","))
    rows;
  p "  ],\n";
  let total f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let gm f = Util.geomean (List.map f rows) in
  p "  \"geomean_speedup_cold\": %.2f,\n" (gm (fun r -> r.base_ms /. r.cold_ms));
  p "  \"geomean_speedup_warm\": %.2f,\n" (gm (fun r -> r.base_ms /. r.warm_ms));
  if with_store then begin
    p "  \"geomean_speedup_store\": %.2f,\n"
      (gm (fun r ->
           match r.store with
           | Some s -> r.base_ms /. s.swarm_ms
           | None -> 1.0));
    p "  \"bytes_per_word\": %.2f,\n"
      (total (fun r ->
           match r.store with
           | Some s -> float_of_int s.bytes
           | None -> 0.0)
       /. total (fun r -> float_of_int r.trace_words));
    p "  \"total_store_warm_ms\": %.1f,\n"
      (total (fun r ->
           match r.store with Some s -> s.swarm_ms | None -> 0.0))
  end;
  p "  \"total_base_ms\": %.1f,\n" (total (fun r -> r.base_ms));
  p "  \"total_cold_ms\": %.1f,\n" (total (fun r -> r.cold_ms));
  p "  \"total_warm_ms\": %.1f\n" (total (fun r -> r.warm_ms));
  p "}\n";
  close_out oc;
  Fmt.pr "@.[wrote %s]@." json_file

let run () =
  Util.header
    "Architecture-grid benchmark: trace-once/model-many vs per-config \
     simulation";
  let n = reps () in
  let ts = Option.map Engine.Tstore.open_dir !Util.tstore in
  Fmt.pr "%d workloads x %d configs (%s), best of %d runs%s@."
    (List.length Workloads.all) (Array.length configs)
    (String.concat ", "
       (List.map
          (fun c -> c.Mach.Config.name)
          (Array.to_list configs)))
    n
    (match !Util.tstore with
     | Some dir -> Printf.sprintf ", trace store at %s" dir
     | None -> "");
  let rows, oks =
    List.split (List.map (bench_workload n ts) Workloads.all)
  in
  (match ts with
   | Some ts ->
     Fmt.pr "trace store: %d entries, %d hits, %d misses, %d bytes on disk@."
       (Engine.Tstore.entries ts) (Engine.Tstore.hits ts)
       (Engine.Tstore.misses ts)
       (Engine.Tstore.bytes_on_disk ts);
     Engine.Tstore.close ts
   | None -> ());
  let identical = List.for_all (fun b -> b) oks in
  if not identical then exit 1;
  let with_store = List.for_all (fun r -> r.store <> None) rows in
  Util.print_table
    ([ "workload"; "3x flatsim"; "cold (gen+grid)"; "gen"; "warm (grid)";
       "cold speedup"; "warm speedup"; "trace words" ]
    @ if with_store then [ "store warm"; "store speedup" ] else [])
    (List.map
       (fun r ->
         [ r.name;
           Printf.sprintf "%.2fms" r.base_ms;
           Printf.sprintf "%.2fms" r.cold_ms;
           Printf.sprintf "%.2fms" r.cold_gen_ms;
           Printf.sprintf "%.2fms" r.warm_ms;
           Printf.sprintf "%.2fx" (r.base_ms /. r.cold_ms);
           Printf.sprintf "%.2fx" (r.base_ms /. r.warm_ms);
           string_of_int r.trace_words ]
         @
         match r.store with
         | Some s ->
           [ Printf.sprintf "%.2fms" s.swarm_ms;
             Printf.sprintf "%.2fx" (r.base_ms /. s.swarm_ms) ]
         | None -> [])
       rows);
  let gm f = Util.geomean (List.map f rows) in
  Fmt.pr
    "@.all outcomes bit-identical across engines and configs%s@.geomean \
     speedup: cold %.2fx, warm %.2fx%s (grid of %d configs)@."
    (if with_store then " (incl. the persisted-trace path)" else "")
    (gm (fun r -> r.base_ms /. r.cold_ms))
    (gm (fun r -> r.base_ms /. r.warm_ms))
    (if with_store then
       Printf.sprintf ", store %.2fx"
         (gm (fun r ->
              match r.store with
              | Some s -> r.base_ms /. s.swarm_ms
              | None -> 1.0))
     else "")
    (Array.length configs);
  if !Util.json_out then write_json ~identical rows
