(* The architecture-grid sweep benchmark: trace-once/model-many against
   per-config full simulation, over the whole workload suite and the
   three preset machine configs.

   Per workload, three timed quantities (best-of-N wall time, to damp
   scheduler noise):
     base — one full Flatsim run per config (3x semantic execution);
     cold — Mtrace.generate + Replay.run_grid (the first time a program
            meets the grid: semantics once, then one model fold per
            config);
     warm — Replay.run_grid alone (the trace already sits in the trace
            cache: every later config, and every re-measure, is pure
            model folding).

   A differential oracle checks the grid results bit-identical (cycles,
   full counter bank, ret, output, steps) to the three independent
   Flatsim runs before any speedup is reported; a mismatch fails the
   benchmark.

   With --json the numbers land in BENCH_arch.json (baseline checked
   in; CI regenerates and uploads one per run). *)

let configs =
  [| Mach.Config.amd_like; Mach.Config.c6713_like; Mach.Config.embedded |]

let json_file = "BENCH_arch.json"

(* MIRA_BENCH_REPS overrides the repeat count (the cram smoke test runs
   with 1: it checks table/JSON shape, not timing quality) *)
let reps () =
  match Option.bind (Sys.getenv_opt "MIRA_BENCH_REPS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> ( match !Util.scale with Util.Fast -> 5 | Util.Full -> 9)

type row = {
  name : string;
  base_ms : float;
  cold_ms : float;
  warm_ms : float;
  trace_words : int;
}

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    f ();
    let d = Unix.gettimeofday () -. t0 in
    if d < !best then best := d
  done;
  !best *. 1000.0

(* bit-identity of one simulator result pair; Stdlib.compare so float
   returns match by bit-pattern semantics (NaN = NaN) *)
let same (a : Mach.Flatsim.result) (b : Mach.Flatsim.result) =
  Stdlib.compare
    ( a.Mach.Flatsim.cycles, a.Mach.Flatsim.counters, a.Mach.Flatsim.ret,
      a.Mach.Flatsim.output, a.Mach.Flatsim.steps )
    ( b.Mach.Flatsim.cycles, b.Mach.Flatsim.counters, b.Mach.Flatsim.ret,
      b.Mach.Flatsim.output, b.Mach.Flatsim.steps )
  = 0

let bench_workload n (w : Workloads.t) : row * bool =
  let p = Workloads.program w in
  let dp = Mira.Decode.decode p in
  let tr = Mach.Mtrace.generate dp in
  (* oracle first: the grid replay must reproduce each config's full
     simulation exactly *)
  let fuel = Mach.Sim.default_fuel in
  let grid = Mach.Replay.run_grid ~configs tr in
  let full =
    Array.map (fun config -> Mach.Flatsim.run ~config ~fuel dp) configs
  in
  let identical = Array.for_all2 same grid full in
  if not identical then
    Fmt.epr "arch: MISMATCH on %s — grid replay differs from full \
             simulation@."
      w.Workloads.name;
  let base_ms =
    best_of n (fun () ->
        Array.iter
          (fun config -> ignore (Mach.Flatsim.run ~config ~fuel dp))
          configs)
  in
  let cold_ms =
    best_of n (fun () ->
        let tr = Mach.Mtrace.generate dp in
        ignore (Mach.Replay.run_grid ~configs tr))
  in
  let warm_ms =
    best_of n (fun () -> ignore (Mach.Replay.run_grid ~configs tr))
  in
  ( { name = w.Workloads.name; base_ms; cold_ms; warm_ms;
      trace_words = tr.Mach.Mtrace.n },
    identical )

let write_json ~identical (rows : row list) =
  let oc = open_out json_file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"icc-bench-arch/1\",\n";
  p "  \"configs\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun c -> Printf.sprintf "%S" c.Mach.Config.name)
          (Array.to_list configs)));
  p "  \"reps\": %d,\n" (reps ());
  p "  \"identical\": %b,\n" identical;
  p "  \"workloads\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      p
        "    {\"name\": %S, \"base_ms\": %.3f, \"cold_ms\": %.3f, \
         \"warm_ms\": %.3f, \"speedup_cold\": %.2f, \"speedup_warm\": \
         %.2f, \"trace_words\": %d}%s\n"
        r.name r.base_ms r.cold_ms r.warm_ms (r.base_ms /. r.cold_ms)
        (r.base_ms /. r.warm_ms) r.trace_words
        (if i = n - 1 then "" else ","))
    rows;
  p "  ],\n";
  let total f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let gm f = Util.geomean (List.map f rows) in
  p "  \"geomean_speedup_cold\": %.2f,\n" (gm (fun r -> r.base_ms /. r.cold_ms));
  p "  \"geomean_speedup_warm\": %.2f,\n" (gm (fun r -> r.base_ms /. r.warm_ms));
  p "  \"total_base_ms\": %.1f,\n" (total (fun r -> r.base_ms));
  p "  \"total_cold_ms\": %.1f,\n" (total (fun r -> r.cold_ms));
  p "  \"total_warm_ms\": %.1f\n" (total (fun r -> r.warm_ms));
  p "}\n";
  close_out oc;
  Fmt.pr "@.[wrote %s]@." json_file

let run () =
  Util.header
    "Architecture-grid benchmark: trace-once/model-many vs per-config \
     simulation";
  let n = reps () in
  Fmt.pr "%d workloads x %d configs (%s), best of %d runs@."
    (List.length Workloads.all) (Array.length configs)
    (String.concat ", "
       (List.map
          (fun c -> c.Mach.Config.name)
          (Array.to_list configs)))
    n;
  let rows, oks =
    List.split (List.map (bench_workload n) Workloads.all)
  in
  let identical = List.for_all (fun b -> b) oks in
  if not identical then exit 1;
  Util.print_table
    [ "workload"; "3x flatsim"; "cold (gen+grid)"; "warm (grid)";
      "cold speedup"; "warm speedup"; "trace words" ]
    (List.map
       (fun r ->
         [ r.name;
           Printf.sprintf "%.2fms" r.base_ms;
           Printf.sprintf "%.2fms" r.cold_ms;
           Printf.sprintf "%.2fms" r.warm_ms;
           Printf.sprintf "%.2fx" (r.base_ms /. r.cold_ms);
           Printf.sprintf "%.2fx" (r.base_ms /. r.warm_ms);
           string_of_int r.trace_words ])
       rows);
  let gm f = Util.geomean (List.map f rows) in
  Fmt.pr
    "@.all outcomes bit-identical across engines and configs@.geomean \
     speedup: cold %.2fx, warm %.2fx (grid of %d configs)@."
    (gm (fun r -> r.base_ms /. r.cold_ms))
    (gm (fun r -> r.base_ms /. r.warm_ms))
    (Array.length configs);
  if !Util.json_out then write_json ~identical rows
