(* Bechamel microbenchmarks of the hot paths: front end, pass application,
   both execution engines (reference interpreter vs pre-decoded flat
   engine, plain and under the machine simulator), feature extraction,
   model queries.  One Test.make per component; throughput sanity rather
   than paper reproduction.

   With --json (see main.ml) the measured ns/run land in
   BENCH_micro.json together with ref-vs-flat speedups, giving the bench
   trajectory a machine-readable point per commit.  The checked-in
   baseline was produced by this harness; CI regenerates and uploads one
   per run. *)

open Bechamel
open Toolkit

let adpcm_src = (Workloads.by_name_exn "adpcm").Workloads.source

(* long enough (~3.6k steps) that execution dominates the per-run setup
   both engines pay (fresh cache/predictor state), short enough to give
   bechamel plenty of samples *)
let small_src =
  {|fn main() -> int {
      var s: int = 0;
      for i = 0 to 512 { s = s + i * 3; }
      return s;
    }|}

let small_prog = Mira.Lower.compile_source_exn small_src
let adpcm_prog = Workloads.program (Workloads.by_name_exn "adpcm")

let knn_model =
  let rng = Random.State.make [| 4 |] in
  let xs =
    Array.init 64 (fun _ -> Array.init 32 (fun _ -> Random.State.float rng 1.0))
  in
  let ys = Array.init 64 (fun i -> i mod 3) in
  Mlkit.Knn.fit ~k:3 (Mlkit.Dataset.make xs ys)

let probe = Array.init 32 (fun i -> float_of_int i /. 32.0)

(* Flat-engine entries measure execution of a pre-decoded program
   (decode once, run many) — the engine-throughput quantity the ref/flat
   speedups compare.  The one-time translation cost is measured by the
   separate "decode:" entry; it is ~3 orders of magnitude below a run on
   any real workload. *)
let small_dec = Mira.Decode.decode small_prog
let adpcm_dec = Mira.Decode.decode adpcm_prog

let tests =
  [
    Test.make ~name:"frontend: parse+typecheck+lower adpcm"
      (Staged.stage (fun () -> Mira.Lower.compile_source_exn adpcm_src));
    Test.make ~name:"passes: O2 pipeline on adpcm"
      (Staged.stage (fun () -> Passes.Pass.apply_sequence Passes.Pass.o2 adpcm_prog));
    Test.make ~name:"passes: unroll4 on adpcm"
      (Staged.stage (fun () ->
           Passes.Pass.apply_sequence
             Passes.Pass.[ Const_prop; Unroll4 ]
             adpcm_prog));
    Test.make ~name:"interp: small loop (ref engine)"
      (Staged.stage (fun () -> Mira.Interp.run small_prog));
    Test.make ~name:"interp: small loop (flat engine)"
      (Staged.stage (fun () -> Mira.Decode.run small_dec));
    Test.make ~name:"interp: adpcm (ref engine)"
      (Staged.stage (fun () -> Mira.Interp.run adpcm_prog));
    Test.make ~name:"interp: adpcm (flat engine)"
      (Staged.stage (fun () -> Mira.Decode.run adpcm_dec));
    Test.make ~name:"sim: small loop (ref engine)"
      (Staged.stage (fun () -> Mach.Sim.run ~engine:Mach.Sim.Ref small_prog));
    Test.make ~name:"sim: small loop (flat engine)"
      (Staged.stage (fun () -> Mach.Sim.run_decoded small_dec));
    Test.make ~name:"sim: adpcm (ref engine)"
      (Staged.stage (fun () -> Mach.Sim.run ~engine:Mach.Sim.Ref adpcm_prog));
    Test.make ~name:"sim: adpcm (flat engine)"
      (Staged.stage (fun () -> Mach.Sim.run_decoded adpcm_dec));
    Test.make ~name:"decode: adpcm"
      (Staged.stage (fun () -> Mira.Decode.decode adpcm_prog));
    Test.make ~name:"features: extract from adpcm"
      (Staged.stage (fun () -> Icc.Features.extract adpcm_prog));
    Test.make ~name:"mlkit: knn predict (64x32)"
      (Staged.stage (fun () -> Mlkit.Knn.predict knn_model probe));
  ]

(* ref/flat pairs reported as speedups in the JSON *)
let pairs =
  [
    ("interp: small loop", "interp: small loop (ref engine)",
     "interp: small loop (flat engine)");
    ("interp: adpcm", "interp: adpcm (ref engine)",
     "interp: adpcm (flat engine)");
    ("sim: small loop", "sim: small loop (ref engine)",
     "sim: small loop (flat engine)");
    ("sim: adpcm", "sim: adpcm (ref engine)", "sim: adpcm (flat engine)");
  ]

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_file = "BENCH_micro.json"

let write_json (measured : (string * float) list) =
  let oc = open_out json_file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"icc-bench-micro/1\",\n";
  p "  \"unit\": \"ns/run\",\n";
  p "  \"results\": [\n";
  let n = List.length measured in
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" (json_escape name) ns
        (if i = n - 1 then "" else ","))
    measured;
  p "  ],\n";
  p "  \"speedups\": [\n";
  let rows =
    List.filter_map
      (fun (label, ref_name, flat_name) ->
        match
          (List.assoc_opt ref_name measured, List.assoc_opt flat_name measured)
        with
        | Some r, Some f when f > 0.0 -> Some (label, r, f, r /. f)
        | _ -> None)
      pairs
  in
  let m = List.length rows in
  List.iteri
    (fun i (label, r, f, s) ->
      p
        "    {\"benchmark\": \"%s\", \"ref_ns\": %.1f, \"flat_ns\": %.1f, \
         \"speedup\": %.2f}%s\n"
        (json_escape label) r f s
        (if i = m - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Fmt.pr "@.[wrote %s]@." json_file

let run () =
  Util.header "Microbenchmarks (bechamel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let test = Test.make_grouped ~name:"icc" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let strip name =
    (* drop the "icc " group prefix bechamel prepends *)
    match String.index_opt name ' ' with
    | Some i when String.sub name 0 i = "icc" ->
      String.sub name (i + 1) (String.length name - i - 1)
    | _ -> name
  in
  let measured = ref [] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        let ns = est in
        measured := (strip name, ns) :: !measured;
        let human =
          if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        rows := [ name; human ] :: !rows
      | _ -> rows := [ name; "-" ] :: !rows)
    clock;
  Util.print_table [ "benchmark"; "time/run" ]
    (List.sort compare !rows);
  let measured = List.sort compare !measured in
  List.iter
    (fun (label, ref_name, flat_name) ->
      match
        (List.assoc_opt ref_name measured, List.assoc_opt flat_name measured)
      with
      | Some r, Some f when f > 0.0 ->
        Fmt.pr "%-18s ref/flat speedup: %.1fx@." label (r /. f)
      | _ -> ())
    pairs;
  if !Util.json_out then write_json measured
