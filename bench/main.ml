(* Experiment harness: regenerates every figure and table of the paper
   (see DESIGN.md's experiment index and EXPERIMENTS.md for measured
   results).

   Usage:
     dune exec bench/main.exe                  # all experiments, fast scale
     dune exec bench/main.exe -- fig2b tab3    # a subset
     dune exec bench/main.exe -- --full        # larger sample sizes
     dune exec bench/main.exe -- --list        # list experiment ids

   The first run builds per-architecture knowledge bases and caches them
   under bench_data/. *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("fig2a", "adpcm optimization-space structure + model contours", Fig2.fig2a);
    ("fig2b", "focused vs random iterative search", Fig2.fig2b);
    ("fig3", "mcf counter characterization vs suite average", Fig34.fig3);
    ("fig4", "PCModel vs -Ofast on mcf", Fig34.fig4);
    ("tab1", "classifier comparison (Sec V claim)", Tables.tab1);
    ("tab2", "GA for code size (Cooper et al. baseline)", Tables.tab2);
    ("tab3", "dynamic optimization vs static (Sec III-D)", Tables.tab3);
    ("tab4", "microbenchmark architecture characterization", Tables.tab4);
    ("tab5", "tournament phase ordering (Sec II-A)", Tables.tab5);
    ("feat", "mutual-information feature ranking (Sec III-E)", Tables.feat);
    ("tab6", "method-specific (per-function) compilation [extension]", Extensions.tab6);
    ("tab7", "unroll-factor prediction [extension]", Extensions.tab7);
    ("tab8", "cross-architecture adaptation [extension]", Extensions.tab8);
    ("micro", "bechamel microbenchmarks", Micro.run);
    ("sweep", "prefix-sharing sweep benchmark (cold/warm, share on/off)", Sweep.run);
    ("dist", "distributed sweep benchmark (1/2/4 workers + fault injection)", Dist_bench.run);
    ("arch", "architecture-grid replay vs per-config simulation", Arch.run);
  ]

let () =
  Obs.Clock.set Unix.gettimeofday;
  Obs.Trace.set_pid (Unix.getpid ());
  let args = List.tl (Array.to_list Sys.argv) in
  (* -j/--jobs N sizes the evaluation engine's worker pool;
     --inject SPEC installs a deterministic fault plan (testing);
     --trace/--metrics enable the Obs layer like miracc's flags do *)
  let rec strip_opts = function
    | [] -> []
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> Util.jobs := j
       | _ ->
         Fmt.epr "-j expects a positive integer@.";
         exit 1);
      strip_opts rest
    | "--json" :: rest ->
      Util.json_out := true;
      strip_opts rest
    | "--no-share" :: rest ->
      Util.share := false;
      strip_opts rest
    | "--distribute" :: n :: rest ->
      (match int_of_string_opt n with
       | Some w when w >= 1 -> Util.distribute := w
       | _ ->
         Fmt.epr "--distribute expects a positive integer@.";
         exit 1);
      strip_opts rest
    | "--tstore" :: dir :: rest ->
      Util.tstore := Some dir;
      strip_opts rest
    | "--engine" :: e :: rest ->
      (match Mach.Sim.engine_of_string e with
       | Some eng -> Mach.Sim.default_engine := eng
       | None ->
         Fmt.epr "--engine expects ref, flat or trace@.";
         exit 1);
      strip_opts rest
    | "--inject" :: spec :: rest ->
      (match Engine.Faults.parse spec with
       | Ok plan -> Engine.Faults.install plan
       | Error e ->
         Fmt.epr "bad --inject spec: %s@." e;
         exit 1);
      strip_opts rest
    | "--trace" :: path :: rest ->
      (match open_out path with
       | oc ->
         Obs.Trace.enable_stream oc;
         let owner = Unix.getpid () in
         at_exit (fun () ->
             if Unix.getpid () = owner then begin
               Obs.Trace.finish ();
               close_out_noerr oc
             end)
       | exception Sys_error e ->
         Fmt.epr "cannot open trace file: %s@." e;
         exit 1);
      strip_opts rest
    | "--metrics" :: path :: rest ->
      Obs.Metrics.timing := true;
      let owner = Unix.getpid () in
      at_exit (fun () ->
          if Unix.getpid () = owner then
            match open_out path with
            | oc ->
              output_string oc (Obs.Metrics.to_jsonl ());
              close_out_noerr oc
            | exception Sys_error e ->
              Fmt.epr "cannot write metrics file: %s@." e);
      strip_opts rest
    | a :: rest -> a :: strip_opts rest
  in
  (try Engine.Faults.install_from_env ()
   with Invalid_argument e ->
     Fmt.epr "bad MIRA_FAULTS: %s@." e;
     exit 1);
  let args = strip_opts args in
  let flags, names = List.partition (fun a -> String.length a > 1 && a.[0] = '-') args in
  if List.mem "--full" flags then Util.scale := Util.Full;
  if List.mem "--list" flags then begin
    List.iter (fun (id, descr, _) -> Fmt.pr "%-6s %s@." id descr) experiments;
    exit 0
  end;
  List.iter
    (fun n ->
      if not (List.exists (fun (id, _, _) -> id = n) experiments) then begin
        Fmt.epr "unknown experiment %S; try --list@." n;
        exit 1
      end)
    names;
  let selected =
    if names = [] then experiments
    else List.filter (fun (id, _, _) -> List.mem id names) experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, _, f) ->
      let t = Unix.gettimeofday () in
      f ();
      Fmt.pr "@.[%s done in %.1fs]@." id (Unix.gettimeofday () -. t))
    selected;
  Fmt.pr "@.all selected experiments done in %.1fs (%s scale, %d jobs)@."
    (Unix.gettimeofday () -. t0)
    (match !Util.scale with Util.Fast -> "fast" | Util.Full -> "full")
    !Util.jobs;
  Hashtbl.iter
    (fun arch eng ->
      Fmt.pr "@.[engine %s]@.%a" arch (Engine.pp_stats ~wall:true) eng;
      if not (Engine.healthy eng) then Fmt.pr "%a@." Engine.pp_health eng;
      Engine.Rcache.close (Engine.cache eng))
    Util.engines
