(* bench_check — the bench regression gate.

   Compares a fresh `miracc-bench ... --json` report against a
   checked-in BENCH_*.json baseline, field by field, with per-metric
   tolerance rules chosen by key name:

   - timing fields ("ns", or ending in _ns/_ms/_s): benches run on
     whatever machine CI hands us, so only a large slowdown is a
     regression — fresh must stay under baseline * factor
     (default 2.0, --factor to override).  Faster is always fine.
   - speedup fields (containing "speedup"): relative measurements are
     steadier than absolute ones, but still noisy — fresh must keep at
     least half the baseline's speedup.
   - booleans (the "identical" bit-identity flags): exact.  These are
     correctness claims, not measurements.
   - every other number (counters: trace_words, dedup_hits, ...):
     exact.  The engine is deterministic; a drifted counter means the
     computation changed, which is exactly what this gate is for.
   - strings: exact, except keys in the skip list.
   - skip list (machine-dependent facts): "cores", plus --skip KEY.

   The baseline drives the walk: every baseline field must be present
   and comparable in the fresh report (a vanished metric is a shape
   regression); extra fresh fields are ignored, so adding metrics never
   breaks the gate.  Arrays of objects are matched by their "name" /
   "benchmark" field when present, by index otherwise.

   Schema evolution: when both reports carry a top-level "schema" of
   the same family but a different version ("icc-bench-arch/1" vs
   "icc-bench-arch/2" — the family is the part before '/'), the gate
   goes lenient: the schema string mismatch is not a regression, and a
   baseline field missing from the fresh report is skipped rather than
   treated as a shape error — a report one schema version apart keeps
   its numeric gates on every field both sides still share.  Different
   families stay a hard string mismatch.

   Exit 0 all rules hold, 1 regressions, 2 usage/parse/shape trouble.
   --json prints a machine-readable verdict (icc-bench-verdict/1). *)

type outcome = {
  path : string;
  rule : string;
  base : string;
  fresh : string;
}

let shape_error = ref false

let jstr = function
  | Tjson.Str s -> Printf.sprintf "%S" s
  | Tjson.Num n ->
    if Float.is_integer n && Float.abs n < 1e15 then
      Printf.sprintf "%d" (int_of_float n)
    else Printf.sprintf "%g" n
  | Tjson.Bool b -> string_of_bool b
  | Tjson.Null -> "null"
  | Tjson.List _ -> "[...]"
  | Tjson.Obj _ -> "{...}"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let ends_with suf s =
  let ns = String.length s and nf = String.length suf in
  ns >= nf && String.sub s (ns - nf) nf = suf

let is_timing key =
  key = "ns" || ends_with "_ns" key || ends_with "_ms" key
  || ends_with "_s" key

let is_speedup key = contains key "speedup"

(* "icc-bench-arch/2" -> ("icc-bench-arch", "2"); no '/' -> whole
   string is the family *)
let schema_family s =
  match String.index_opt s '/' with
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "")

(* same family, different version: comparing across one schema bump *)
let cross_version base fresh =
  match (Tjson.mem "schema" base, Tjson.mem "schema" fresh) with
  | Some (Tjson.Str b), Some (Tjson.Str f) ->
    let bf, bv = schema_family b and ff, fv = schema_family f in
    bf = ff && bv <> fv
  | _ -> false

(* the label an array element is matched by across baseline and fresh *)
let element_key ev =
  match Tjson.mem "name" ev with
  | Some (Tjson.Str s) -> Some s
  | _ ->
    (match Tjson.mem "benchmark" ev with
     | Some (Tjson.Str s) -> Some s
     | _ -> None)

let rec compare_values ~factor ~skip ~lenient ~path ~key regressions base
    fresh =
  let fail rule bv fv =
    regressions :=
      { path; rule; base = jstr bv; fresh = jstr fv } :: !regressions
  in
  let shape why =
    shape_error := true;
    regressions :=
      { path; rule = "shape: " ^ why; base = jstr base; fresh = jstr fresh }
      :: !regressions
  in
  if List.mem key skip then ()
  else
    match (base, fresh) with
    | Tjson.Num b, Tjson.Num f ->
      if is_timing key then begin
        if f > b *. factor then
          fail (Printf.sprintf "timing <= %gx baseline" factor) base fresh
      end
      else if is_speedup key then begin
        if f < b *. 0.5 then fail "speedup >= 0.5x baseline" base fresh
      end
      else if f <> b then fail "counter exact" base fresh
    | Tjson.Bool b, Tjson.Bool f ->
      if b <> f then fail "boolean exact" base fresh
    | Tjson.Str b, Tjson.Str f ->
      (* a lenient run exists precisely because the schema strings
         differ within one family; don't re-flag the thing we already
         decided to tolerate *)
      if b <> f && not (lenient && key = "schema") then
        fail "string exact" base fresh
    | Tjson.Null, Tjson.Null -> ()
    | Tjson.Obj bfs, (Tjson.Obj _ as fobj) ->
      List.iter
        (fun (k, bv) ->
          let sub = if path = "" then k else path ^ "." ^ k in
          match Tjson.mem k fobj with
          | Some fv ->
            compare_values ~factor ~skip ~lenient ~path:sub ~key:k
              regressions bv fv
          | None ->
            if not (List.mem k skip || lenient) then begin
              shape_error := true;
              regressions :=
                { path = sub; rule = "shape: missing in fresh";
                  base = jstr bv; fresh = "(absent)" }
                :: !regressions
            end)
        bfs
    | Tjson.List bs, Tjson.List fs ->
      let keyed = List.for_all (fun e -> element_key e <> None) bs in
      if keyed && bs <> [] then
        List.iter
          (fun bv ->
            let k = Option.get (element_key bv) in
            let sub = Printf.sprintf "%s[%s]" path k in
            match List.find_opt (fun fv -> element_key fv = Some k) fs with
            | Some fv ->
              compare_values ~factor ~skip ~lenient ~path:sub ~key
                regressions bv fv
            | None ->
              if not lenient then begin
                shape_error := true;
                regressions :=
                  { path = sub; rule = "shape: missing in fresh";
                    base = "{...}"; fresh = "(absent)" }
                  :: !regressions
              end)
          bs
      else begin
        if List.length fs < List.length bs then
          shape (Printf.sprintf "array shrank %d -> %d" (List.length bs)
                   (List.length fs));
        List.iteri
          (fun i bv ->
            match List.nth_opt fs i with
            | Some fv ->
              compare_values ~factor ~skip ~lenient
                ~path:(Printf.sprintf "%s[%d]" path i)
                ~key regressions bv fv
            | None -> ())
          bs
      end
    | _ -> shape "type changed"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json = ref false in
  let factor = ref 2.0 in
  let skip = ref [ "cores" ] in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | "--factor" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f >= 1.0 -> factor := f
       | _ ->
         prerr_endline "bench_check: --factor wants a number >= 1";
         exit 2);
      parse_args rest
    | "--skip" :: k :: rest ->
      skip := k :: !skip;
      parse_args rest
    | f :: rest ->
      files := f :: !files;
      parse_args rest
  in
  parse_args args;
  let base_path, fresh_path =
    match List.rev !files with
    | [ b; f ] -> (b, f)
    | _ ->
      prerr_endline
        "usage: bench_check [--json] [--factor F] [--skip KEY] BASELINE FRESH";
      exit 2
  in
  let load what path =
    match Tjson.parse (Tjson.read_file path) with
    | v -> v
    | exception Tjson.Error msg ->
      Printf.eprintf "bench_check: %s %s: %s\n" what path msg;
      exit 2
    | exception Sys_error e ->
      Printf.eprintf "bench_check: %s\n" e;
      exit 2
  in
  let base = load "baseline" base_path in
  let fresh = load "fresh" fresh_path in
  let regressions = ref [] in
  let lenient = cross_version base fresh in
  if lenient then
    Printf.eprintf
      "bench_check: note: schema versions differ within one family; \
       missing fields tolerated\n";
  compare_values ~factor:!factor ~skip:!skip ~lenient ~path:"" ~key:""
    regressions base fresh;
  let regs = List.rev !regressions in
  let ok = regs = [] in
  if !json then begin
    Printf.printf "{\n  \"schema\": \"icc-bench-verdict/1\",\n";
    Printf.printf "  \"baseline\": \"%s\",\n  \"fresh\": \"%s\",\n"
      (escape base_path) (escape fresh_path);
    Printf.printf "  \"factor\": %g,\n  \"ok\": %b,\n" !factor ok;
    Printf.printf "  \"regressions\": [%s\n  ]\n}\n"
      (String.concat ","
         (List.map
            (fun r ->
              Printf.sprintf
                "\n    {\"path\": \"%s\", \"rule\": \"%s\", \
                 \"baseline\": %s, \"fresh\": %s}"
                (escape r.path) (escape r.rule)
                (let q s =
                   (* scalar renderings from [jstr] are already JSON *)
                   if s = "(absent)" then "\"(absent)\""
                   else if s = "[...]" || s = "{...}" then
                     Printf.sprintf "%S" s
                   else s
                 in
                 q r.base)
                (let q s =
                   if s = "(absent)" then "\"(absent)\""
                   else if s = "[...]" || s = "{...}" then
                     Printf.sprintf "%S" s
                   else s
                 in
                 q r.fresh))
            regs))
  end
  else if ok then
    Printf.printf "bench OK: %s within tolerance of %s (factor %g)\n"
      fresh_path base_path !factor
  else begin
    Printf.printf "bench REGRESSION: %s vs %s\n" fresh_path base_path;
    List.iter
      (fun r ->
        Printf.printf "  %s: %s (baseline %s, fresh %s)\n" r.path r.rule
          r.base r.fresh)
      regs
  end;
  if ok then exit 0 else if !shape_error then exit 2 else exit 1
