(* Maintenance utility.  Default: run every workload on the simulator and
   print the per-program stats (steps, CPI, memory-miss rates, return
   value); use it to regenerate the pinned checksums in
   test/test_workloads.ml after an intentional workload change.

   Extra subcommands, built on the shared testgen library:
     wl gen <seed>    print the generated Mira program for a fuzz seed
     wl fuzz <n>      run the differential check over n generated
                      programs; failures are printed as shrunk minimal
                      programs with their seed *)

let fuzz_seed_base = 1000

(* the shared differential oracle: O2 must preserve the observation *)
let o2_differs (src : string) : bool =
  match Mira.Lower.compile_source src with
  | Error _ -> false
  | Ok p ->
    let p' = Passes.Pass.apply_sequence Passes.Pass.o2 p in
    not
      (Mira.Interp.equal_observation (Mira.Interp.observe p)
         (Mira.Interp.observe p'))

(* a deterministic random (valid) pass sequence per seed, so the engine
   oracle also sees optimized shapes the fixed pipelines never produce *)
let random_seq_for seed =
  let st = Random.State.make [| seed; 0x5eed |] in
  let rec pick () =
    let len = 1 + Random.State.int st 8 in
    let s =
      List.init len (fun _ ->
          Passes.Pass.of_index (Random.State.int st Passes.Pass.count))
    in
    if Passes.Pass.sequence_valid s then s else pick ()
  in
  pick ()

(* the engine oracle: the reference, flat and trace-replay engines must
   agree bit-for-bit (ret, output, steps, trap message, cycles, every
   counter) on every preset machine config *)
let engines_differ seq (src : string) : bool =
  Testgen.Diff.disagrees ~transform:(Passes.Pass.apply_sequence seq) src

let run_fuzz n =
  let bad = ref 0 in
  for i = 0 to n - 1 do
    let seed = fuzz_seed_base + i in
    let src = Testgen.Gen_program.generate seed in
    if o2_differs src then begin
      incr bad;
      print_endline
        (Testgen.Shrink.report ~seed ~fails:o2_differs src)
    end;
    List.iter
      (fun (label, seq) ->
        let fails = engines_differ seq in
        if fails src then begin
          incr bad;
          Printf.printf "engine mismatch after %s (%s):\n" label
            (Passes.Pass.sequence_to_string seq);
          print_endline (Testgen.Shrink.report ~seed ~fails src)
        end)
      [
        ("no passes", []);
        ("O2", Passes.Pass.o2);
        ("a random sequence", random_seq_for seed);
      ]
  done;
  Printf.printf "fuzz: %d programs, %d failures\n" n !bad;
  if !bad > 0 then exit 1

let run_workload_stats () =
  List.iter
    (fun (w : Workloads.t) ->
      let p = Workloads.program w in
      match Mach.Sim.run p with
      | r ->
        let g c = float_of_int (Mach.Counters.get r.Mach.Sim.counters c) in
        let tot = g Mach.Counters.TOT_INS in
        Printf.printf
          "%-10s steps=%8d cpi=%.2f l1stm/ki=%6.2f l2stm/ki=%6.3f ret=%s\n"
          w.Workloads.name r.Mach.Sim.steps
          (float_of_int r.Mach.Sim.cycles /. float_of_int r.Mach.Sim.steps)
          (1000. *. g Mach.Counters.L1_STM /. tot)
          (1000. *. g Mach.Counters.L2_STM /. tot)
          (Mira.Interp.value_to_string r.Mach.Sim.ret)
      | exception e ->
        Printf.printf "%-10s FAILED: %s\n" w.Workloads.name
          (Printexc.to_string e))
    Workloads.all

let () =
  match Array.to_list Sys.argv with
  | _ :: "gen" :: seed :: _ ->
    print_string (Testgen.Gen_program.generate (int_of_string seed))
  | _ :: "fuzz" :: n :: _ -> run_fuzz (int_of_string n)
  | _ -> run_workload_stats ()
