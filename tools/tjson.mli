(** The tools' tiny JSON reader — shared by {!Trace_check} and
    {!Bench_check} so both agree on what our machine-written JSON
    means.  Numbers are floats; non-ASCII [\u] escapes collapse to
    ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** parse failure, with a byte offset in the message *)
exception Error of string

(** [parse s] — one complete JSON document, strict. *)
val parse : string -> t

(** [parse_trace s] — a Chrome trace_event array; a missing closing
    ["]"] (crashed writer) is tolerated and reported as
    [(events, true)]. *)
val parse_trace : string -> t list * bool

(** [mem k v] — field [k] of object [v]; [None] on non-objects. *)
val mem : string -> t -> t option

(** slurp a file; raises [Sys_error]. *)
val read_file : string -> string
