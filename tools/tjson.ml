(* Tjson — the tools' tiny JSON reader.

   One recursive-descent parser shared by the trace validator and the
   bench regression gate, so the two keep identical ideas about what
   our machine-written JSON means.  Two entry points:

   - [parse] reads one complete document (bench reports, rollups);
   - [parse_trace] reads a Chrome trace_event array and tolerates a
     missing closing "]", as the spec allows: a crashed run truncates
     after a complete object.  Returns the events plus a
     truncation flag.

   Errors raise [Error] with a byte offset.  Numbers are floats;
   \u escapes above ASCII collapse to '?' — nothing we emit needs
   more. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

type cursor = { s : string; len : int; mutable pos : int }

let error c msg = raise (Error (Printf.sprintf "byte %d: %s" c.pos msg))
let peek c = if c.pos < c.len then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < c.len
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  if peek c = Some ch then c.pos <- c.pos + 1
  else error c (Printf.sprintf "expected %c" ch)

let literal c word v =
  if c.pos + String.length word <= c.len
     && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    v
  end
  else error c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= c.len then error c "unterminated string";
    match c.s.[c.pos] with
    | '"' -> c.pos <- c.pos + 1
    | '\\' ->
      c.pos <- c.pos + 1;
      (if c.pos >= c.len then error c "unterminated escape";
       match c.s.[c.pos] with
       | '"' | '\\' | '/' -> Buffer.add_char b c.s.[c.pos]
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' | 'f' -> Buffer.add_char b ' '
       | 'u' ->
         if c.pos + 4 >= c.len then error c "short \\u escape";
         (match int_of_string ("0x" ^ String.sub c.s (c.pos + 1) 4) with
          | code ->
            c.pos <- c.pos + 4;
            Buffer.add_char b (if code < 128 then Char.chr code else '?')
          | exception _ -> error c "bad \\u escape")
       | ch -> error c (Printf.sprintf "bad escape \\%c" ch));
      c.pos <- c.pos + 1;
      go ()
    | ch ->
      Buffer.add_char b ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while c.pos < c.len && num_char c.s.[c.pos] do c.pos <- c.pos + 1 done;
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some v -> v
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ()
        | Some '}' -> c.pos <- c.pos + 1
        | _ -> error c "expected , or } in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements ()
        | Some ']' -> c.pos <- c.pos + 1
        | _ -> error c "expected , or ] in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { s; len = String.length s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if peek c <> None then error c "trailing garbage after document";
  v

let parse_trace s =
  let c = { s; len = String.length s; pos = 0 } in
  skip_ws c;
  expect c '[';
  let events = ref [] in
  let truncated = ref false in
  skip_ws c;
  (match peek c with
   | Some ']' -> c.pos <- c.pos + 1
   | None -> truncated := true
   | Some _ ->
     let rec loop () =
       events := parse_value c :: !events;
       skip_ws c;
       match peek c with
       | Some ',' ->
         c.pos <- c.pos + 1;
         skip_ws c;
         if peek c = None then truncated := true else loop ()
       | Some ']' -> c.pos <- c.pos + 1
       | None -> truncated := true
       | Some ch -> error c (Printf.sprintf "expected , or ] but got %c" ch)
     in
     loop ());
  skip_ws c;
  if peek c <> None then error c "trailing garbage after array";
  (List.rev !events, !truncated)

let mem k = function Obj fs -> List.assoc_opt k fs | _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
