(* trace_check — validate a Chrome trace_event JSON file.

   Checks the properties the observability layer promises:
   - the document is a JSON array of event objects (a missing closing
     "]" is accepted, as the trace_event spec allows: a crashed run
     truncates after a complete object);
   - every event has "name", "ph", "ts", "pid" of the right types and a
     phase letter we emit (B, E, i, C);
   - "E" events never outnumber the "B" events above them per pid (an
     unmatched end would corrupt the viewer's nesting).

   Prints a one-line summary plus the sorted category set, so CI can
   assert which subsystems showed up.  Exit 1 on any violation. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

let check path =
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let len = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (Printf.sprintf "byte %d: %s" !pos msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= len
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= len then error "unterminated escape";
         match s.[!pos] with
         | '"' | '\\' | '/' -> Buffer.add_char b s.[!pos]
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' | 'f' -> Buffer.add_char b ' '
         | 'u' ->
           if !pos + 4 >= len then error "short \\u escape";
           (match int_of_string ("0x" ^ String.sub s (!pos + 1) 4) with
            | code ->
              pos := !pos + 4;
              Buffer.add_char b (if code < 128 then Char.chr code else '?')
            | exception _ -> error "bad \\u escape")
         | c -> error (Printf.sprintf "bad escape \\%c" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < len && num_char s.[!pos] do incr pos done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ()
          | Some '}' -> incr pos
          | _ -> error "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements ()
          | Some ']' -> incr pos
          | _ -> error "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  (* the top level: '[' then events; EOF instead of ']' is legal *)
  skip_ws ();
  expect '[';
  let events = ref [] in
  let truncated = ref false in
  skip_ws ();
  (match peek () with
   | Some ']' -> incr pos
   | None -> truncated := true
   | Some _ ->
     let rec loop () =
       events := parse_value () :: !events;
       skip_ws ();
       match peek () with
       | Some ',' ->
         incr pos;
         skip_ws ();
         if peek () = None then truncated := true else loop ()
       | Some ']' -> incr pos
       | None -> truncated := true
       | Some c -> error (Printf.sprintf "expected , or ] but got %c" c)
     in
     loop ());
  skip_ws ();
  if peek () <> None then error "trailing garbage after array";
  let events = List.rev !events in
  (* per-event shape + span-balance accounting *)
  let counts = Hashtbl.create 4 in
  let cats = Hashtbl.create 16 in
  let depth : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let bump tbl k =
    match Hashtbl.find_opt tbl k with
    | Some r -> incr r
    | None -> Hashtbl.replace tbl k (ref 1)
  in
  List.iteri
    (fun i ev ->
      let fields =
        match ev with
        | Obj fs -> fs
        | _ -> raise (Bad (Printf.sprintf "event %d is not an object" i))
      in
      let field k = List.assoc_opt k fields in
      let str k =
        match field k with
        | Some (Str v) -> v
        | _ -> raise (Bad (Printf.sprintf "event %d: missing string %S" i k))
      in
      let num k =
        match field k with
        | Some (Num v) -> v
        | _ -> raise (Bad (Printf.sprintf "event %d: missing number %S" i k))
      in
      let ph = str "ph" in
      ignore (str "name");
      ignore (num "ts");
      let pid = int_of_float (num "pid") in
      (match field "cat" with
       | Some (Str c) -> Hashtbl.replace cats c ()
       | _ -> ());
      (match field "args" with
       | None | Some (Obj _) -> ()
       | Some _ -> raise (Bad (Printf.sprintf "event %d: args not an object" i)));
      let d =
        match Hashtbl.find_opt depth pid with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.replace depth pid r;
          r
      in
      (match ph with
       | "B" -> incr d
       | "E" ->
         if !d = 0 then
           raise (Bad (Printf.sprintf "event %d: E without open B (pid %d)" i pid));
         decr d
       | "i" | "C" -> ()
       | p -> raise (Bad (Printf.sprintf "event %d: unknown phase %S" i p)));
      bump counts ph)
    events;
  let count ph =
    match Hashtbl.find_opt counts ph with Some r -> !r | None -> 0
  in
  let unclosed = Hashtbl.fold (fun _ r acc -> acc + !r) depth 0 in
  let cat_list =
    List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) cats [])
  in
  Printf.printf "trace OK: %d events (B=%d E=%d i=%d C=%d), %d pids, unclosed %d%s\n"
    (List.length events) (count "B") (count "E") (count "i") (count "C")
    (Hashtbl.length depth) unclosed
    (if !truncated then ", truncated" else "");
  Printf.printf "categories: %s\n" (String.concat ", " cat_list)

let () =
  match Sys.argv with
  | [| _; path |] -> (
    try check path with
    | Bad msg ->
      Printf.eprintf "trace_check: %s: %s\n" path msg;
      exit 1
    | Sys_error e ->
      Printf.eprintf "trace_check: %s\n" e;
      exit 1)
  | _ ->
    prerr_endline "usage: trace_check FILE.json";
    exit 2
