(* trace_check — validate a Chrome trace_event JSON file.

   Checks the properties the observability layer promises:
   - the document is a JSON array of event objects (a missing closing
     "]" is accepted, as the trace_event spec allows: a crashed run
     truncates after a complete object);
   - every event has "name", "ph", "ts", "pid" of the right types and a
     phase letter we emit (B, E, i, C, plus the "M" metadata events
     the trace merger adds);
   - "E" events never outnumber the "B" events above them per pid (an
     unmatched end would corrupt the viewer's nesting).

   With --merged the file is additionally held to the promises of
   [miracc trace-merge] output: at least two distinct pids, every
   process that announced a run id (the "trace.run" instants) announced
   the same one, and at least two did — so the file really is one
   correlated multi-process run, not a concatenation of strangers.

   Prints a one-line summary plus the sorted category set, so CI can
   assert which subsystems showed up.  Exit 1 on any violation. *)

exception Bad of string

let check ~merged path =
  let events, truncated =
    try Tjson.parse_trace (Tjson.read_file path)
    with Tjson.Error msg -> raise (Bad msg)
  in
  (* per-event shape + span-balance accounting *)
  let counts = Hashtbl.create 4 in
  let cats = Hashtbl.create 16 in
  let depth : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  (* pid -> run id announced by its "trace.run" instant *)
  let runs : (int, string) Hashtbl.t = Hashtbl.create 4 in
  let bump tbl k =
    match Hashtbl.find_opt tbl k with
    | Some r -> incr r
    | None -> Hashtbl.replace tbl k (ref 1)
  in
  List.iteri
    (fun i ev ->
      (match ev with
       | Tjson.Obj _ -> ()
       | _ -> raise (Bad (Printf.sprintf "event %d is not an object" i)));
      let str k =
        match Tjson.mem k ev with
        | Some (Tjson.Str v) -> v
        | _ -> raise (Bad (Printf.sprintf "event %d: missing string %S" i k))
      in
      let num k =
        match Tjson.mem k ev with
        | Some (Tjson.Num v) -> v
        | _ -> raise (Bad (Printf.sprintf "event %d: missing number %S" i k))
      in
      let ph = str "ph" in
      let name = str "name" in
      ignore (num "ts");
      let pid = int_of_float (num "pid") in
      (match Tjson.mem "cat" ev with
       | Some (Tjson.Str c) -> Hashtbl.replace cats c ()
       | _ -> ());
      (match Tjson.mem "args" ev with
       | None | Some (Tjson.Obj _) -> ()
       | Some _ -> raise (Bad (Printf.sprintf "event %d: args not an object" i)));
      if name = "trace.run" then begin
        match Tjson.mem "args" ev with
        | Some (Tjson.Obj fs) ->
          (match List.assoc_opt "id" fs with
           | Some (Tjson.Str id) -> Hashtbl.replace runs pid id
           | _ ->
             raise (Bad (Printf.sprintf "event %d: trace.run without id" i)))
        | _ -> raise (Bad (Printf.sprintf "event %d: trace.run without args" i))
      end;
      let d =
        match Hashtbl.find_opt depth pid with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.replace depth pid r;
          r
      in
      (match ph with
       | "B" -> incr d
       | "E" ->
         if !d = 0 then
           raise (Bad (Printf.sprintf "event %d: E without open B (pid %d)" i pid));
         decr d
       | "i" | "C" | "M" -> ()
       | p -> raise (Bad (Printf.sprintf "event %d: unknown phase %S" i p)));
      bump counts ph)
    events;
  let count ph =
    match Hashtbl.find_opt counts ph with Some r -> !r | None -> 0
  in
  let unclosed = Hashtbl.fold (fun _ r acc -> acc + !r) depth 0 in
  let cat_list =
    List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) cats [])
  in
  Printf.printf "trace OK: %d events (B=%d E=%d i=%d C=%d), %d pids, unclosed %d%s\n"
    (List.length events) (count "B") (count "E") (count "i") (count "C")
    (Hashtbl.length depth) unclosed
    (if truncated then ", truncated" else "");
  Printf.printf "categories: %s\n" (String.concat ", " cat_list);
  if merged then begin
    if Hashtbl.length depth < 2 then
      raise (Bad (Printf.sprintf "merged trace has %d pid(s), want >= 2"
                    (Hashtbl.length depth)));
    let announced =
      Hashtbl.fold (fun pid id acc -> (pid, id) :: acc) runs []
      |> List.sort compare
    in
    (match announced with
     | [] | [ _ ] ->
       raise (Bad (Printf.sprintf
                     "merged trace: %d process(es) announced a run id, want >= 2"
                     (List.length announced)))
     | (_, first) :: rest ->
       List.iter
         (fun (pid, id) ->
           if id <> first then
             raise (Bad (Printf.sprintf
                           "merged trace: pid %d announced run %s, others %s"
                           pid id first)))
         rest;
       Printf.printf "merged OK: run %s announced by %d processes\n" first
         (List.length announced))
  end

let () =
  let merged, path =
    match Sys.argv with
    | [| _; path |] -> (false, Some path)
    | [| _; "--merged"; path |] | [| _; path; "--merged" |] -> (true, Some path)
    | _ -> (false, None)
  in
  match path with
  | Some path -> (
    try check ~merged path with
    | Bad msg ->
      Printf.eprintf "trace_check: %s: %s\n" path msg;
      exit 1
    | Sys_error e ->
      Printf.eprintf "trace_check: %s\n" e;
      exit 1)
  | None ->
    prerr_endline "usage: trace_check [--merged] FILE.json";
    exit 2
